#include "shard/sharded_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "dynamics/workload.hpp"
#include "obs/engine_telemetry.hpp"
#include "obs/trace.hpp"
#include "util/assertions.hpp"
#include "util/thread_pool.hpp"

namespace dlb {

namespace {

std::uint64_t mono_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Phase-latency histograms of the sharded engine (leaked; see
/// MetricsRegistry::instance).
struct ShardPhases {
  obs::Histogram& prepare;
  obs::Histogram& halo;
  obs::Histogram& decide;
  obs::Histogram& drain;
};

ShardPhases& shard_phases() {
  static ShardPhases* p = [] {
    auto& reg = obs::MetricsRegistry::instance();
    const std::string name = "dlb_engine_phase_seconds";
    const std::string help =
        "Wall-clock latency of one engine phase within a round.";
    return new ShardPhases{
        reg.histogram(name, help, obs::phase_seconds_bounds(),
                      {{"engine", "sharded"}, {"phase", "prepare"}}),
        reg.histogram(name, help, obs::phase_seconds_bounds(),
                      {{"engine", "sharded"}, {"phase", "halo"}}),
        reg.histogram(name, help, obs::phase_seconds_bounds(),
                      {{"engine", "sharded"}, {"phase", "decide"}}),
        reg.histogram(name, help, obs::phase_seconds_bounds(),
                      {{"engine", "sharded"}, {"phase", "drain"}}),
    };
  }();
  return *p;
}

/// Wire format of one tier-1 halo segment: header then `len` loads. The
/// header is two NodeIds so the receiver needs no out-of-band layout —
/// a process transport replays the same bytes.
struct HaloHeader {
  NodeId dest_window;  ///< receiver's first window slot to fill
  NodeId len;          ///< loads that follow
};
static_assert(sizeof(HaloHeader) == 2 * sizeof(NodeId));

/// Wire format of one tier-2 routed flow: (global node, amount), packed
/// to 12 bytes (no struct padding on the wire).
inline constexpr std::size_t kFlowRecordBytes = sizeof(NodeId) + sizeof(Load);

inline void append_flow(std::vector<std::byte>& buf, NodeId v, Load f) {
  std::byte rec[kFlowRecordBytes];
  std::memcpy(rec, &v, sizeof(NodeId));
  std::memcpy(rec + sizeof(NodeId), &f, sizeof(Load));
  buf.insert(buf.end(), rec, rec + kFlowRecordBytes);
}

}  // namespace

ShardedEngine::ShardedEngine(const Graph& g, ShardedEngineConfig config,
                             Balancer& balancer, const LoadVector& initial,
                             int shards, ShardChannel* channel)
    : g_(&g), config_(config), balancer_(&balancer),
      part_(g.num_nodes(), shards) {
  DLB_REQUIRE(config_.self_loops >= 0, "self_loops must be non-negative");
  DLB_REQUIRE(config_.conservation_interval >= 1,
              "sharded engine: audit interval must be >= 1");
  DLB_REQUIRE(initial.size() == static_cast<std::size_t>(g.num_nodes()),
              "initial load vector has wrong size");
  audit_ = ConservationPolicy{config_.check_conservation,
                              config_.conservation_interval};
  if (channel != nullptr) {
    DLB_REQUIRE(channel->shard_count() == part_.shards(),
                "sharded engine: channel endpoint count != shard count");
    channel_ = channel;
  } else {
    owned_channel_ = std::make_unique<InProcessShardChannel>(part_.shards());
    channel_ = owned_channel_.get();
  }

  balancer_->reset(g, config_.self_loops);
  reach_ = balancer_->window_reach(g);
  // A window needs reach < n ring slots each way; a degenerate tiny graph
  // whose reach covers the whole ring routes flows instead.
  if (reach_ >= g.num_nodes()) reach_ = -1;

  const NodeId w = reach_ >= 0 ? reach_ : 0;
  shards_.resize(static_cast<std::size_t>(part_.shards()));
  for (int s = 0; s < part_.shards(); ++s) {
    Shard& sh = shards_[static_cast<std::size_t>(s)];
    sh.begin = part_.begin(s);
    sh.size = part_.size(s);
    sh.window.assign(static_cast<std::size_t>(sh.size + 2 * w), 0);
    std::copy(initial.begin() + sh.begin, initial.begin() + sh.begin + sh.size,
              sh.window.begin() + w);
    sh.acc.reset(sh.window.size());
  }
  if (reach_ >= 0) {
    build_tier1_plan();
  } else {
    build_tier2_plan();
  }

  // Per-shard channel byte counters, registered up front (registration
  // is one mutex pass at construction; the per-post inc() is a no-op
  // branch until an exporter arms the registry).
  for (int s = 0; s < part_.shards(); ++s) {
    Shard& sh = shards_[static_cast<std::size_t>(s)];
    const obs::Labels labels{{"shard", std::to_string(s)}};
    sh.bytes_posted = &obs::MetricsRegistry::instance().counter(
        "dlb_shard_channel_bytes_posted_total",
        "Bytes this shard posted into the cross-shard channel (halo "
        "segments incl. headers, routed flow records).",
        labels);
    sh.bytes_drained = &obs::MetricsRegistry::instance().counter(
        "dlb_shard_channel_bytes_drained_total",
        "Bytes this shard drained from the cross-shard channel.", labels);
  }

  // Statistics adoption, mirroring RoundEngineBase::adopt_loads.
  total_ = total_load(initial);
  base_total_ = total_;
  const auto [lo, hi] = std::minmax_element(initial.begin(), initial.end());
  min_load_ = *lo;
  max_load_ = *hi;
  min_load_seen_ = min_load_;
  stats_dirty_ = false;
}

ShardedEngine::~ShardedEngine() = default;

std::uint64_t ShardedEngine::round_begin() const noexcept {
  if (!obs::metrics_armed()) return 0;
  return mono_ns();
}

void ShardedEngine::round_end(std::uint64_t start_ns) {
  if (start_ns == 0) return;
  if (!telemetry_) {
    telemetry_ = std::make_unique<obs::EngineTelemetry>("sharded");
  }
  obs::EngineTelemetry& tel = *telemetry_;
  tel.rounds.inc();
  tel.round_seconds.observe(static_cast<double>(mono_ns() - start_ns) * 1e-9);
  tel.time.set(t_);
  tel.injected.set(injected_total_);
  tel.consumed.set(consumed_total_);
  // Cached stats only — never refresh from here (deferred-stats history
  // must be identical with telemetry on or off).
  if (!stats_dirty_) {
    tel.min_load.set(min_load_);
    tel.max_load.set(max_load_);
    tel.discrepancy.set(max_load_ - min_load_);
  }
}

void ShardedEngine::build_tier1_plan() {
  // Invert the halo geometry: shard t's halo segments, grouped by owner,
  // become the owners' send lists. Pure ring arithmetic — no adjacency is
  // ever consulted, so a 2^26-node implicit cycle plans in O(k) space.
  for (int t = 0; t < part_.shards(); ++t) {
    for (const HaloSegment& seg : ring_halo_segments(part_, t, reach_)) {
      Shard& owner = shards_[static_cast<std::size_t>(seg.owner)];
      owner.sends.push_back(HaloSend{
          t, reach_ + (seg.global_begin - owner.begin), seg.len,
          seg.window_offset});
    }
  }
}

void ShardedEngine::build_tier2_plan() {
  // The edge cut, computed once: nodes with no cut edge (the common case
  // on structured graphs — only the slice boundary qualifies) take a
  // branch-free all-local scatter in the decide loop.
  const int d = g_->degree();
  with_topology(*g_, [&](const auto& topo) {
    for (int s = 0; s < part_.shards(); ++s) {
      Shard& sh = shards_[static_cast<std::size_t>(s)];
      sh.boundary.assign(static_cast<std::size_t>(sh.size), 0);
      sh.flow_out.resize(static_cast<std::size_t>(part_.shards()));
      for (NodeId i = 0; i < sh.size; ++i) {
        const NodeId u = sh.begin + i;
        for (int p = 0; p < d; ++p) {
          if (part_.owner(topo.neighbor(u, p)) != s) {
            sh.boundary[static_cast<std::size_t>(i)] = 1;
            ++sh.cut_edges;
          }
        }
      }
    }
  });
}

template <class Body>
void ShardedEngine::for_shards(bool parallel_ok, Body&& body) {
  const int k = part_.shards();
  if (parallel_ok && pool_ != nullptr && pool_->parallelism() > 1 && k > 1) {
    pool_->for_ranges(k, [&](std::int64_t first, std::int64_t last) {
      for (std::int64_t s = first; s < last; ++s) body(static_cast<int>(s));
    });
  } else {
    for (int s = 0; s < k; ++s) body(s);
  }
}

std::span<const Load> ShardedEngine::gather_into_scratch() const {
  scratch_.resize(static_cast<std::size_t>(part_.num_nodes()));
  const NodeId w = reach_ >= 0 ? reach_ : 0;
  for (const Shard& sh : shards_) {
    std::copy(sh.window.begin() + w, sh.window.begin() + w + sh.size,
              scratch_.begin() + sh.begin);
  }
  return {scratch_.data(), scratch_.size()};
}

LoadVector ShardedEngine::gather_loads() const {
  const std::span<const Load> all = gather_into_scratch();
  return LoadVector(all.begin(), all.end());
}

Load ShardedEngine::load_of(NodeId u) const {
  DLB_REQUIRE(u >= 0 && u < part_.num_nodes(), "load_of: node out of range");
  const Shard& sh = shards_[static_cast<std::size_t>(part_.owner(u))];
  return sh.window[static_cast<std::size_t>(window_slot(sh, u))];
}

void ShardedEngine::apply_workload() {
  if (workload_ == nullptr) return;
  // The serial prepare hook sees the global loads only when it actually
  // reads them (the adversarial argmax scan) — otherwise the O(n) gather
  // is skipped and the span is empty.
  const std::span<const Load> loads = workload_->prepare_reads_loads()
                                          ? gather_into_scratch()
                                          : std::span<const Load>();
  workload_->prepare(t_, loads);
  const NodeId w = reach_ >= 0 ? reach_ : 0;
  if (const std::vector<NodeId>* sparse = workload_->affected_nodes()) {
    Load inj = 0;
    Load con = 0;
    for (const NodeId u : *sparse) {
      DLB_REQUIRE(u >= 0 && u < part_.num_nodes(),
                  "workload affected node out of range");
      const Load d = workload_->delta(u, t_);
      Shard& sh = shards_[static_cast<std::size_t>(part_.owner(u))];
      Load& x = sh.window[static_cast<std::size_t>(w + (u - sh.begin))];
      if (d > 0) {
        x += d;
        inj += d;
      } else if (d < 0) {
        const Load take = std::min(-d, std::max<Load>(x, 0));
        x -= take;
        con += take;
      }
    }
    injected_total_ += inj;
    consumed_total_ += con;
    total_ += inj - con;
    return;
  }
  // Dense: per-shard partials, combined with commutative integer adds —
  // identical totals for any shard count or pool size (the flat engine's
  // per-chunk argument, with shards as the chunks).
  for_shards(workload_->parallel_generate_safe(), [&](int s) {
    Shard& sh = shards_[static_cast<std::size_t>(s)];
    Load inj = 0;
    Load con = 0;
    for (NodeId i = 0; i < sh.size; ++i) {
      const Load d = workload_->delta(sh.begin + i, t_);
      Load& x = sh.window[static_cast<std::size_t>(w + i)];
      if (d > 0) {
        x += d;
        inj += d;
      } else if (d < 0) {
        const Load take = std::min(-d, std::max<Load>(x, 0));
        x -= take;
        con += take;
      }
    }
    sh.inj = inj;
    sh.con = con;
  });
  Load inj = 0;
  Load con = 0;
  for (const Shard& sh : shards_) {
    inj += sh.inj;
    con += sh.con;
  }
  injected_total_ += inj;
  consumed_total_ += con;
  total_ += inj - con;
}

void ShardedEngine::exchange_halos() {
  // Post phase: every shard serializes its boundary loads for the shards
  // whose halos it feeds. Barrier between the two for_shards calls, so
  // no drain starts before every post landed.
  for_shards(true, [&](int s) {
    const Shard& sh = shards_[static_cast<std::size_t>(s)];
    for (const HaloSend& send : sh.sends) {
      const HaloHeader hdr{send.dest_window, send.len};
      channel_->post(s, send.to, ShardTag::kHaloLoads,
                     std::as_bytes(std::span<const HaloHeader>(&hdr, 1)));
      channel_->post(
          s, send.to, ShardTag::kHaloLoads,
          std::as_bytes(std::span<const Load>(
              sh.window.data() + send.src_window,
              static_cast<std::size_t>(send.len))));
      sh.bytes_posted->inc(sizeof(HaloHeader) +
                           static_cast<std::uint64_t>(send.len) * sizeof(Load));
    }
  });
  for_shards(true, [&](int s) {
    Shard& sh = shards_[static_cast<std::size_t>(s)];
    channel_->drain(
        s, ShardTag::kHaloLoads,
        [&](int /*from*/, std::span<const std::byte> bytes) {
          sh.bytes_drained->inc(bytes.size());
          std::size_t off = 0;
          while (off < bytes.size()) {
            HaloHeader hdr;
            DLB_REQUIRE(off + sizeof(HaloHeader) <= bytes.size(),
                        "halo stream: truncated header");
            std::memcpy(&hdr, bytes.data() + off, sizeof(HaloHeader));
            const std::size_t payload =
                static_cast<std::size_t>(hdr.len) * sizeof(Load);
            DLB_REQUIRE(off + sizeof(HaloHeader) + payload <= bytes.size(),
                        "halo stream: truncated payload");
            DLB_REQUIRE(hdr.dest_window >= 0 && hdr.len >= 0 &&
                            static_cast<std::size_t>(hdr.dest_window) +
                                    static_cast<std::size_t>(hdr.len) <=
                                sh.window.size(),
                        "halo stream: segment out of window");
            std::memcpy(sh.window.data() + hdr.dest_window,
                        bytes.data() + off + sizeof(HaloHeader), payload);
            off += sizeof(HaloHeader) + payload;
          }
        });
  });
}

void ShardedEngine::decide_shard(int s, Step t) {
  obs::TraceSpan span("decide", "shard", "shard", s);
  Shard& sh = shards_[static_cast<std::size_t>(s)];
  sh.acc.begin_round();
  if (reach_ >= 0) {
    // Tier 1: the balancer's windowed gather kernel, single-touch over
    // the owned window slots, min/max fused into the emit sweep. Nothing
    // leaves the shard — the halo refill already happened.
    FlowSink sink(*g_, config_.self_loops, &sh.acc);
    balancer_->decide_window(
        std::span<const Load>(sh.window.data(), sh.window.size()), sh.begin,
        sh.size, reach_, t, sink);
    DLB_REQUIRE(sink.emit_covered() == sh.size,
                "decide_window did not cover every owned slot");
    sh.round_min = sink.emit_min();
    sh.round_max = sink.emit_max();
    // O(1) apply: the accumulator's owned slots are the next loads; its
    // (stale) halo slots are refilled before the next decide reads them.
    sh.window.swap(sh.acc.values());
    return;
  }
  // Tier 2: the default decide() loop over the owned slice — the same
  // contract enforcement as Balancer::decide_range — with flows routed by
  // owner: local ones scatter into the shard's accumulator, cross-shard
  // ones are staged per destination and posted below.
  const int d = g_->degree();
  const int d_plus = d + config_.self_loops;
  const bool negatives_ok = balancer_->allows_negative();
  std::vector<Load> row(static_cast<std::size_t>(d_plus));
  const EpochAccumulator::Scatter next(sh.acc);
  with_topology(*g_, [&](const auto& topo) {
    for (NodeId i = 0; i < sh.size; ++i) {
      const NodeId u = sh.begin + i;
      std::fill(row.begin(), row.end(), 0);
      const Load x = sh.window[static_cast<std::size_t>(i)];
      balancer_->decide(u, x, t, row);
      Load sent = 0;
      for (int p = 0; p < d_plus; ++p) {
        DLB_ASSERT(negatives_ok || row[static_cast<std::size_t>(p)] >= 0,
                   "balancer produced a negative flow");
        sent += row[static_cast<std::size_t>(p)];
      }
      const Load remainder = x - sent;
      DLB_REQUIRE(negatives_ok || remainder >= 0,
                  "balancer sent more tokens than available");
      Load kept = remainder;
      for (int p = d; p < d_plus; ++p) {
        kept += row[static_cast<std::size_t>(p)];
      }
      next.add(static_cast<std::size_t>(i), kept);
      if (!sh.boundary[static_cast<std::size_t>(i)]) {
        // Interior node: every neighbor is local by the cut table.
        for (int p = 0; p < d; ++p) {
          next.add(static_cast<std::size_t>(topo.neighbor(u, p) - sh.begin),
                   row[static_cast<std::size_t>(p)]);
        }
      } else {
        for (int p = 0; p < d; ++p) {
          const NodeId v = topo.neighbor(u, p);
          const Load f = row[static_cast<std::size_t>(p)];
          const int o = part_.owner(v);
          if (o == s) {
            next.add(static_cast<std::size_t>(v - sh.begin), f);
          } else if (f != 0) {
            append_flow(sh.flow_out[static_cast<std::size_t>(o)], v, f);
          }
        }
      }
    }
  });
  for (int o = 0; o < part_.shards(); ++o) {
    std::vector<std::byte>& buf = sh.flow_out[static_cast<std::size_t>(o)];
    if (buf.empty()) continue;
    channel_->post(s, o, ShardTag::kFlows,
                   std::span<const std::byte>(buf.data(), buf.size()));
    sh.bytes_posted->inc(buf.size());
    buf.clear();
  }
}

void ShardedEngine::drain_flows() {
  for_shards(true, [&](int s) {
    Shard& sh = shards_[static_cast<std::size_t>(s)];
    channel_->drain(
        s, ShardTag::kFlows,
        [&](int /*from*/, std::span<const std::byte> bytes) {
          sh.bytes_drained->inc(bytes.size());
          DLB_REQUIRE(bytes.size() % kFlowRecordBytes == 0,
                      "flow stream: truncated record");
          const EpochAccumulator::Scatter next(sh.acc);
          for (std::size_t off = 0; off < bytes.size();
               off += kFlowRecordBytes) {
            NodeId v;
            Load f;
            std::memcpy(&v, bytes.data() + off, sizeof(NodeId));
            std::memcpy(&f, bytes.data() + off + sizeof(NodeId),
                        sizeof(Load));
            DLB_REQUIRE(v >= sh.begin && v < sh.begin + sh.size,
                        "flow stream: node not owned by this shard");
            next.add(static_cast<std::size_t>(v - sh.begin), f);
          }
        });
    // All of the round's adds (local + drained) have landed: materialize
    // the next loads, fold min/max into the same sweep, and swap.
    sh.acc.finalize_stats(sh.round_min, sh.round_max);
    sh.window.swap(sh.acc.values());
  });
}

void ShardedEngine::step() {
  const std::uint64_t obs_t0 = round_begin();
  obs::TraceSpan round_span("round", "sharded", "t", t_ + 1);
  apply_workload();
  {
    obs::PhaseScope phase(shard_phases().prepare, "prepare", "sharded", "t",
                          t_ + 1);
    // Serial once-per-round hook, before any shard decides — exactly the
    // decide_all contract. The sink exists only to convey graph/mode (no
    // built-in prepare_round writes flows); global loads are gathered
    // only for balancers that declare they read them.
    const std::span<const Load> loads = balancer_->prepare_reads_loads()
                                            ? gather_into_scratch()
                                            : std::span<const Load>();
    FlowSink sink(*g_, config_.self_loops, &shards_[0].acc);
    balancer_->prepare_round(loads, t_, sink);
  }
  const bool parallel_decide = balancer_->parallel_decide_safe();
  if (reach_ >= 0) {
    {
      obs::PhaseScope phase(shard_phases().halo, "halo", "sharded", "t",
                            t_ + 1);
      exchange_halos();
    }
    obs::PhaseScope phase(shard_phases().decide, "decide", "sharded", "t",
                          t_ + 1);
    for_shards(parallel_decide, [&](int s) { decide_shard(s, t_); });
  } else {
    {
      // Serial shard order when the balancer is not parallel-safe keeps
      // e.g. a sequential RNG stream in ascending node order — the same
      // trajectory as the flat serial engine.
      obs::PhaseScope phase(shard_phases().decide, "decide", "sharded", "t",
                            t_ + 1);
      for_shards(parallel_decide, [&](int s) { decide_shard(s, t_); });
    }
    obs::PhaseScope phase(shard_phases().drain, "drain", "sharded", "t",
                          t_ + 1);
    drain_flows();
  }
  Load lo = std::numeric_limits<Load>::max();
  Load hi = std::numeric_limits<Load>::min();
  for (const Shard& sh : shards_) {
    lo = std::min(lo, sh.round_min);
    hi = std::max(hi, sh.round_max);
  }
  round_min_ = lo;
  round_max_ = hi;
  round_stats_valid_ = true;
  after_step();
  round_end(obs_t0);
}

void ShardedEngine::run(Step steps) {
  DLB_REQUIRE(steps >= 0, "run: negative step count");
  for (Step i = 0; i < steps; ++i) step();
}

void ShardedEngine::refresh_stats(bool audit_total) const {
  const NodeId w = reach_ >= 0 ? reach_ : 0;
  Load lo = std::numeric_limits<Load>::max();
  Load hi = std::numeric_limits<Load>::min();
  Load sum = 0;
  for (const Shard& sh : shards_) {
    const Load* x = sh.window.data() + w;
    if (audit_total) {
      for (NodeId i = 0; i < sh.size; ++i) {
        lo = std::min(lo, x[i]);
        hi = std::max(hi, x[i]);
        sum += x[i];
      }
    } else {
      for (NodeId i = 0; i < sh.size; ++i) {
        lo = std::min(lo, x[i]);
        hi = std::max(hi, x[i]);
      }
    }
  }
  if (audit_total) {
    DLB_REQUIRE(sum == total_, "token conservation violated by engine step");
  }
  min_load_ = lo;
  max_load_ = hi;
  min_load_seen_ = std::min(min_load_seen_, lo);
  stats_dirty_ = false;
}

void ShardedEngine::after_step() {
  // Mirrors RoundEngineBase::after_step so the sharded observable
  // history (min/max/min_seen/dirty) is bit-equal to the flat engine's.
  ++t_;
  const bool audit =
      audit_.enabled && (audit_.interval == 1 || t_ % audit_.interval == 0);
  if (audit) {
    refresh_stats(true);
  } else if (round_stats_valid_) {
    min_load_ = round_min_;
    max_load_ = round_max_;
    min_load_seen_ = std::min(min_load_seen_, round_min_);
    stats_dirty_ = false;
  } else if (deferred_stats_) {
    stats_dirty_ = true;
  } else {
    refresh_stats(false);
  }
  round_stats_valid_ = false;
}

std::size_t ShardedEngine::shard_resident_bytes(int s) const {
  const Shard& sh = shards_[static_cast<std::size_t>(s)];
  // Load window + accumulator values (both Load) + epoch stamps (1 byte).
  return sh.window.size() * sizeof(Load) +
         sh.acc.size() * (sizeof(Load) + 1);
}

std::size_t ShardedEngine::shard_halo_bytes(int s) const {
  if (reach_ >= 0) {
    // 2W halo slots in the window and in the accumulator's value array,
    // plus their epoch stamps.
    return static_cast<std::size_t>(2 * reach_) * (2 * sizeof(Load) + 1);
  }
  const Shard& sh = shards_[static_cast<std::size_t>(s)];
  std::size_t bytes = 0;
  for (const auto& buf : sh.flow_out) bytes += buf.capacity();
  return bytes;
}

std::uint64_t ShardedEngine::shard_cut_edges(int s) const {
  return shards_[static_cast<std::size_t>(s)].cut_edges;
}

void ShardedEngine::save_core_state(StateWriter& w) const {
  // Field-for-field the RoundEngineBase layout: a k-shard snapshot IS a
  // flat snapshot (and restores into any shard count, or the flat
  // engine, unchanged).
  w.vec_i64(gather_into_scratch());
  w.i64(t_);
  w.i64(total_);
  w.i64(base_total_);
  w.i64(injected_total_);
  w.i64(consumed_total_);
  w.i64(min_load_);
  w.i64(max_load_);
  w.i64(min_load_seen_);
  w.b(stats_dirty_);
}

void ShardedEngine::load_core_state(StateReader& r) {
  const std::vector<std::int64_t> loads = r.vec_i64();
  if (loads.size() != static_cast<std::size_t>(part_.num_nodes())) {
    throw serial_error("engine core state: load vector size mismatch");
  }
  const NodeId w = reach_ >= 0 ? reach_ : 0;
  for (Shard& sh : shards_) {
    std::copy(loads.begin() + sh.begin, loads.begin() + sh.begin + sh.size,
              sh.window.begin() + w);
  }
  t_ = r.i64();
  total_ = r.i64();
  base_total_ = r.i64();
  injected_total_ = r.i64();
  consumed_total_ = r.i64();
  min_load_ = r.i64();
  max_load_ = r.i64();
  min_load_seen_ = r.i64();
  stats_dirty_ = r.b();
  round_stats_valid_ = false;
}

}  // namespace dlb
