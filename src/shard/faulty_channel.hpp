// Deterministic fault injection for the cross-shard transport.
//
// FaultyChannel decorates any inner ShardChannel and damages traffic the
// way a real lossy transport would — dropped posts, duplicated posts,
// single-bit corruption, frames delayed across a round barrier — plus
// scheduled crash-kills of whole shards, which the ShardSupervisor (not
// the channel) consumes. Every per-post decision is drawn from a
// counter-based RNG keyed on (plan seed, round, sender, receiver, tag,
// nth-post-on-that-edge): no shared sequential stream exists, so the
// fault pattern is a pure function of the traffic schedule — the same
// run produces the same faults byte-for-byte at any thread count, and a
// failing seed is a reproducible regression test, the same discipline as
// the src/dynamics/ workloads.
//
// Draw order per post is fixed (drop, corrupt, delay, duplicate — four
// u01 draws always consumed, whether or not the plan arms that kind), so
// a plan's fault pattern never shifts when another knob changes.
//
// Thread-safety mirrors the engine's phase discipline: post() runs on
// the sender's thread and touches only (from, ·)-indexed state; delayed
// frames are released by begin_round(), which the engine calls serially
// between rounds.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/load_vector.hpp"  // Step
#include "obs/metrics.hpp"
#include "shard/channel.hpp"
#include "util/assertions.hpp"
#include "util/rng.hpp"

namespace dlb {

/// A reproducible fault schedule. Message-fault probabilities are
/// per-post and independent; `crashes` lists SIGKILL-style shard losses
/// ("kill shard s once round R has completed") that a ShardSupervisor
/// consumes. Parse/describe round-trip the spec string used by CLI
/// flags and CI: "seed=7,drop=0.1,dup=0.05,corrupt=0.02,delay=0.1,
/// crash=12@2,crash=40@0".
struct FaultPlan {
  std::uint64_t seed = 0;
  double drop = 0.0;       ///< P(post vanishes)
  double duplicate = 0.0;  ///< P(post delivered twice)
  double corrupt = 0.0;    ///< P(one deterministic bit flips)
  double delay = 0.0;      ///< P(post held until the next round barrier)

  struct Crash {
    Step after_round = 0;  ///< fires once the engine has completed this round
    int shard = 0;
  };
  std::vector<Crash> crashes;

  bool message_faults() const noexcept {
    return drop > 0 || duplicate > 0 || corrupt > 0 || delay > 0;
  }

  static FaultPlan parse(const std::string& spec) {
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t end = spec.find(',', pos);
      if (end == std::string::npos) end = spec.size();
      const std::string item = spec.substr(pos, end - pos);
      pos = end + 1;
      if (item.empty()) continue;
      const std::size_t eq = item.find('=');
      DLB_REQUIRE(eq != std::string::npos,
                  "fault plan: expected key=value, got '" + item + "'");
      const std::string key = item.substr(0, eq);
      const std::string val = item.substr(eq + 1);
      try {
        if (key == "seed") {
          plan.seed = std::stoull(val);
        } else if (key == "drop") {
          plan.drop = std::stod(val);
        } else if (key == "dup") {
          plan.duplicate = std::stod(val);
        } else if (key == "corrupt") {
          plan.corrupt = std::stod(val);
        } else if (key == "delay") {
          plan.delay = std::stod(val);
        } else if (key == "crash") {
          const std::size_t at = val.find('@');
          DLB_REQUIRE(at != std::string::npos,
                      "fault plan: crash wants ROUND@SHARD, got '" + val + "'");
          plan.crashes.push_back(
              Crash{static_cast<Step>(std::stoll(val.substr(0, at))),
                    std::stoi(val.substr(at + 1))});
        } else {
          DLB_REQUIRE(false, "fault plan: unknown key '" + key + "'");
        }
      } catch (const std::invalid_argument&) {
        DLB_REQUIRE(false, "fault plan: unparsable value in '" + item + "'");
      } catch (const std::out_of_range&) {
        DLB_REQUIRE(false, "fault plan: value out of range in '" + item + "'");
      }
    }
    auto prob = [](double p) { return p >= 0.0 && p <= 1.0; };
    DLB_REQUIRE(prob(plan.drop) && prob(plan.duplicate) &&
                    prob(plan.corrupt) && prob(plan.delay),
                "fault plan: probabilities must lie in [0, 1]");
    return plan;
  }

  std::string describe() const {
    std::string s = "seed=" + std::to_string(seed);
    auto add = [&s](const char* k, double v) {
      if (v > 0) s += std::string(",") + k + "=" + std::to_string(v);
    };
    add("drop", drop);
    add("dup", duplicate);
    add("corrupt", corrupt);
    add("delay", delay);
    for (const Crash& c : crashes) {
      s += ",crash=" + std::to_string(c.after_round) + "@" +
           std::to_string(c.shard);
    }
    return s;
  }
};

class FaultyChannel final : public ShardChannel {
 public:
  /// `inner` is not owned and must outlive this decorator.
  FaultyChannel(ShardChannel& inner, FaultPlan plan)
      : inner_(&inner), plan_(std::move(plan)) {
    const std::size_t k = static_cast<std::size_t>(inner_->shard_count());
    edge_counter_.assign(k * k * static_cast<std::size_t>(kShardTagCount), 0);
    pending_.resize(k);
    auto& reg = obs::MetricsRegistry::instance();
    const std::string name = "dlb_shard_faults_injected_total";
    const std::string help =
        "Transport faults the FaultyChannel injected, by kind.";
    injected_drop_ = &reg.counter(name, help, {{"kind", "drop"}});
    injected_duplicate_ = &reg.counter(name, help, {{"kind", "duplicate"}});
    injected_corrupt_ = &reg.counter(name, help, {{"kind", "corrupt"}});
    injected_delay_ = &reg.counter(name, help, {{"kind", "delay"}});
  }

  int shard_count() const override { return inner_->shard_count(); }
  bool lossless() const override { return false; }

  void begin_round(std::int64_t t) override {
    inner_->begin_round(t);
    round_ = t;
    std::fill(edge_counter_.begin(), edge_counter_.end(), 0);
    // Release last round's delayed posts into the inner streams: they
    // arrive ahead of this round's traffic and fail the receiver's
    // round check (counted stale, retried) — a delay is a loss that
    // additionally exercises the staleness path.
    for (auto& queue : pending_) {
      for (Delayed& d : queue) {
        inner_->post(d.from, d.to, d.tag,
                     std::span<const std::byte>(d.bytes.data(),
                                                d.bytes.size()));
      }
      queue.clear();
    }
  }

  void reset() override {
    for (auto& queue : pending_) queue.clear();
    inner_->reset();
  }

  void post(int from, int to, ShardTag tag,
            std::span<const std::byte> bytes) override {
    // Counter-RNG key: every (edge, nth-post) pair owns an independent
    // stream; splitmix64 both mixes the key and drives the draws.
    std::uint64_t state = plan_.seed;
    state ^= splitmix64_mix(static_cast<std::uint64_t>(round_));
    state ^= splitmix64_mix((static_cast<std::uint64_t>(from) << 40) ^
                            (static_cast<std::uint64_t>(to) << 16) ^
                            static_cast<std::uint64_t>(tag));
    state ^= splitmix64_mix(0x5EEDULL + edge_counter_[edge_index(from, to,
                                                                 tag)]++);
    auto u01 = [&state]() {
      return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
    };
    const bool f_drop = u01() < plan_.drop;
    const bool f_corrupt = u01() < plan_.corrupt;
    const bool f_delay = u01() < plan_.delay;
    const bool f_duplicate = u01() < plan_.duplicate;
    if (f_drop) {
      injected_drop_->inc();
      return;
    }
    std::span<const std::byte> payload = bytes;
    std::vector<std::byte> damaged;
    if (f_corrupt && !bytes.empty()) {
      injected_corrupt_->inc();
      damaged.assign(bytes.begin(), bytes.end());
      const std::uint64_t bit = splitmix64(state) % (damaged.size() * 8);
      damaged[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
      payload = std::span<const std::byte>(damaged.data(), damaged.size());
    }
    if (f_delay) {
      injected_delay_->inc();
      pending_[static_cast<std::size_t>(from)].push_back(
          Delayed{from, to, tag,
                  std::vector<std::byte>(payload.begin(), payload.end())});
      return;
    }
    inner_->post(from, to, tag, payload);
    if (f_duplicate) {
      injected_duplicate_->inc();
      inner_->post(from, to, tag, payload);
    }
  }

  void drain(int to, ShardTag tag,
             const std::function<void(int from, std::span<const std::byte>)>&
                 deliver) override {
    inner_->drain(to, tag, deliver);
  }

  const FaultPlan& plan() const noexcept { return plan_; }
  /// Posts currently held across the round barrier (tests/diagnostics).
  std::size_t pending_posts() const noexcept {
    std::size_t n = 0;
    for (const auto& queue : pending_) n += queue.size();
    return n;
  }

 private:
  /// splitmix64 finalizer over a constant key (no stream advance).
  static std::uint64_t splitmix64_mix(std::uint64_t key) noexcept {
    std::uint64_t s = key;
    return splitmix64(s);
  }

  std::size_t edge_index(int from, int to, ShardTag tag) const noexcept {
    const std::size_t k = static_cast<std::size_t>(inner_->shard_count());
    return (static_cast<std::size_t>(from) * k +
            static_cast<std::size_t>(to)) *
               static_cast<std::size_t>(kShardTagCount) +
           static_cast<std::size_t>(tag);
  }

  struct Delayed {
    int from;
    int to;
    ShardTag tag;
    std::vector<std::byte> bytes;
  };

  ShardChannel* inner_;
  FaultPlan plan_;
  std::int64_t round_ = 0;
  std::vector<std::uint32_t> edge_counter_;   ///< per (from, to, tag) posts
  std::vector<std::vector<Delayed>> pending_;  ///< per-sender held posts
  obs::Counter* injected_drop_ = nullptr;
  obs::Counter* injected_duplicate_ = nullptr;
  obs::Counter* injected_corrupt_ = nullptr;
  obs::Counter* injected_delay_ = nullptr;
};

}  // namespace dlb
