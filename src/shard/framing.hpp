// Frame protocol of the cross-shard channel: detection before trust.
//
// The ShardChannel seam is stream-shaped and, until now, assumed perfect
// delivery — one flipped bit in a halo segment would be memcpy'd straight
// into a load window and silently desynchronize the round. Every message
// the sharded engine posts is therefore wrapped in a fixed 48-byte frame
// header carrying magic, version, tag, sender, round, a (seq, total)
// position within the sender's per-round stream, the payload length, and
// two FNV-1a checksums (one over the header itself, one over the
// payload). At drain time the receiver can classify every failure a lossy
// transport produces — corruption, truncation, duplication, reordering,
// staleness (a frame delayed across a round boundary), and outright loss
// (a (seq, total) hole) — *before* any payload byte reaches engine state,
// and the engine's bounded re-post retry turns all of them back into the
// byte-exact fault-free round. The header is encoded little-endian
// byte-by-byte (the util/serial.hpp discipline), so frames are
// implementation-independent bytes a process transport can replay.
//
// Decode contract: decode_frame distinguishes "the stream is unframed
// garbage from here on" (kBadHeader / kTruncated — the caller must abort
// the delivery, the rest of the bytes cannot be trusted) from "this frame
// is intact framing around a damaged payload" (kBadPayload — the caller
// skips exactly this frame and keeps parsing, because the validated
// header gives the payload's extent).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/serial.hpp"

namespace dlb {

/// The round protocol could not be completed: a frame stream stayed
/// incomplete after the configured re-post budget (a sender is gone and
/// no supervisor recovered it), or a lossless transport delivered damage
/// (an engine bug, not weather). Distinct from serial_error (persistence
/// format) and invariant_error (caller bugs): this one means the
/// *transport* failed the run.
class shard_fault_error : public std::runtime_error {
 public:
  explicit shard_fault_error(const std::string& what)
      : std::runtime_error(what) {}
};

/// "DLBF" little-endian — first four bytes of every frame.
inline constexpr std::uint32_t kFrameMagic = 0x46424C44u;
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 48;

/// One decoded frame: header fields plus a view into the payload bytes
/// (valid while the drained buffer is).
struct FrameView {
  std::uint8_t tag = 0;        ///< ShardTag of the exchange
  std::int32_t from = 0;       ///< sender shard id
  std::int64_t round = 0;      ///< round the frame belongs to (t+1 in step t)
  std::uint32_t seq = 0;       ///< position in the (from, to, tag, round) stream
  std::uint32_t total = 0;     ///< frames in that stream (>= 1, known at post)
  std::span<const std::byte> payload;
};

namespace framing_detail {

inline void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

inline void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

inline std::uint32_t get_u32(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

inline std::uint64_t get_u64(const std::byte* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

inline std::uint64_t fnv1a64_bytes(std::span<const std::byte> data) noexcept {
  return fnv1a64(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

}  // namespace framing_detail

/// Appends one complete frame (header + payload) to `out`. The payload
/// may be empty — an empty frame is how a tier-2 sender tells a receiver
/// "no flows crossed this edge this round", which is what makes the
/// expected-sender roster static and loss detectable.
inline void append_frame(std::vector<std::byte>& out, std::uint8_t tag,
                         std::int32_t from, std::int64_t round,
                         std::uint32_t seq, std::uint32_t total,
                         std::span<const std::byte> payload) {
  using namespace framing_detail;
  const std::size_t base = out.size();
  put_u32(out, kFrameMagic);
  out.push_back(static_cast<std::byte>(kFrameVersion));
  out.push_back(static_cast<std::byte>(tag));
  out.push_back(std::byte{0});  // flags, reserved in v1
  out.push_back(std::byte{0});  // padding, must be zero
  put_u32(out, static_cast<std::uint32_t>(from));
  put_u32(out, seq);
  put_u32(out, total);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u64(out, static_cast<std::uint64_t>(round));
  put_u64(out, fnv1a64_bytes(payload));
  // Header checksum covers everything above it; a flip anywhere in the
  // first 40 bytes (including the payload checksum) fails this one.
  put_u64(out, fnv1a64_bytes(
                   std::span<const std::byte>(out.data() + base, 40)));
  out.insert(out.end(), payload.begin(), payload.end());
}

enum class FrameStatus {
  kOk,          ///< frame intact; `off` advanced past it
  kBadHeader,   ///< magic/version/checksum wrong — abort the delivery
  kTruncated,   ///< buffer ends inside the frame — abort the delivery
  kBadPayload,  ///< header intact, payload checksum wrong; `off` advanced
};

/// Decodes the frame starting at `buf[off]`. Advances `off` past the
/// frame on kOk and kBadPayload; leaves it untouched on kBadHeader and
/// kTruncated (nothing after a damaged header can be located).
inline FrameStatus decode_frame(std::span<const std::byte> buf,
                                std::size_t& off, FrameView& out) {
  using namespace framing_detail;
  if (buf.size() - off < kFrameHeaderBytes) return FrameStatus::kTruncated;
  const std::byte* h = buf.data() + off;
  const std::uint64_t header_sum =
      fnv1a64_bytes(std::span<const std::byte>(h, 40));
  if (header_sum != get_u64(h + 40)) return FrameStatus::kBadHeader;
  if (get_u32(h) != kFrameMagic) return FrameStatus::kBadHeader;
  if (std::to_integer<std::uint8_t>(h[4]) != kFrameVersion ||
      std::to_integer<std::uint8_t>(h[6]) != 0 ||
      std::to_integer<std::uint8_t>(h[7]) != 0) {
    return FrameStatus::kBadHeader;
  }
  out.tag = std::to_integer<std::uint8_t>(h[5]);
  out.from = static_cast<std::int32_t>(get_u32(h + 8));
  out.seq = get_u32(h + 12);
  out.total = get_u32(h + 16);
  const std::uint32_t len = get_u32(h + 20);
  out.round = static_cast<std::int64_t>(get_u64(h + 24));
  const std::uint64_t payload_sum = get_u64(h + 32);
  if (buf.size() - off - kFrameHeaderBytes < len) {
    return FrameStatus::kTruncated;
  }
  out.payload = buf.subspan(off + kFrameHeaderBytes, len);
  off += kFrameHeaderBytes + len;
  if (fnv1a64_bytes(out.payload) != payload_sum) {
    return FrameStatus::kBadPayload;
  }
  return FrameStatus::kOk;
}

}  // namespace dlb
