#include "shard/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <span>
#include <string>
#include <utility>

#include "dynamics/workload.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "shard/framing.hpp"
#include "util/assertions.hpp"
#include "util/serial.hpp"

namespace dlb {

namespace {

/// Supervisor counters and the recovery-latency histogram (leaked; see
/// MetricsRegistry::instance).
struct SupervisorMetrics {
  obs::Counter& crashes;
  obs::Counter& recoveries_replay;
  obs::Counter& recoveries_rollback;
  obs::Counter& checkpoints;
  obs::Counter& replayed_rounds;
  obs::Histogram& recovery_seconds;
};

SupervisorMetrics& supervisor_metrics() {
  static SupervisorMetrics* m = [] {
    auto& reg = obs::MetricsRegistry::instance();
    const std::string rec = "dlb_shard_recoveries_total";
    const std::string rec_help =
        "Completed shard recoveries, by mechanism (per-shard replay vs "
        "full engine rollback).";
    return new SupervisorMetrics{
        reg.counter("dlb_shard_crashes_total",
                    "Shard crash-kills the supervisor injected or observed."),
        reg.counter(rec, rec_help, {{"kind", "replay"}}),
        reg.counter(rec, rec_help, {{"kind", "rollback"}}),
        reg.counter("dlb_shard_checkpoints_total",
                    "Recovery checkpoints captured by the supervisor."),
        reg.counter("dlb_shard_replayed_rounds_total",
                    "Rounds re-executed during recoveries (replay: per "
                    "dead shard; rollback: whole engine)."),
        reg.histogram("dlb_shard_recovery_seconds",
                      "Wall-clock latency of one recovery (all dead shards "
                      "of the round, checkpoint restore + replay).",
                      obs::phase_seconds_bounds()),
    };
  }();
  return *m;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ShardSupervisor::ShardSupervisor(ShardedEngine& engine, Options opts)
    : engine_(&engine), opts_(std::move(opts)) {
  DLB_REQUIRE(opts_.checkpoint_interval >= 0,
              "shard supervisor: negative checkpoint interval");
  for (const FaultPlan::Crash& c : opts_.fault_plan.crashes) {
    DLB_REQUIRE(c.shard >= 0 && c.shard < engine_->shards(),
                "shard supervisor: crash plan names a shard out of range");
    DLB_REQUIRE(c.after_round >= engine_->time(),
                "shard supervisor: crash plan names an already-passed round");
    crashes_.push_back(CrashEvent{c, false});
  }

  const Balancer& bal = engine_->balancer();
  // Replay gate, per tier. Tier 1 (windowed) decides are pure gathers
  // over the shard's own window, so only a prepare hook that reads the
  // global loads disqualifies; tier 2 additionally needs decides that
  // are independent across shards (one shared sequential RNG is not).
  can_replay_ = engine_->windowed()
                    ? !bal.prepare_reads_loads()
                    : (bal.parallel_decide_safe() && !bal.prepare_reads_loads());
  {
    StateWriter probe;
    bal.save_state(probe);
    stateless_ = probe.take().empty();
  }
  if (opts_.replay_factory) {
    factory_ = opts_.replay_factory;
  } else if (!stateless_) {
    try {
      factory_ = find_balancer_factory(bal.name());
    } catch (const invariant_error&) {
      // Stateful balancer constructed outside the registry and no
      // factory supplied: no replica can be built — fall back to
      // rollback, which rewinds the live instance instead.
    }
  }
  if (!stateless_ && !factory_) can_replay_ = false;

  engine_->set_input_log(can_replay_ ? this : nullptr);
  take_checkpoint();
}

ShardSupervisor::~ShardSupervisor() { engine_->set_input_log(nullptr); }

void ShardSupervisor::take_checkpoint() {
  obs::TraceSpan span("checkpoint", "supervisor", "t", engine_->time());
  ck_t_ = engine_->time();
  ck_loads_ = engine_->gather_loads();
  StateWriter core;
  engine_->save_core_state(core);
  ck_core_ = core.take();
  StateWriter bal;
  engine_->balancer().save_state(bal);
  ck_balancer_ = bal.take();
  ck_workload_.clear();
  ck_has_workload_ = engine_->workload() != nullptr;
  if (ck_has_workload_) {
    StateWriter w;
    engine_->workload()->save_state(w);
    ck_workload_ = w.take();
  }
  // Rounds at or before the checkpoint can never be replayed again.
  while (!log_.empty() && log_.front().round <= ck_t_) log_.pop_front();
  supervisor_metrics().checkpoints.inc();
}

void ShardSupervisor::record_round(int shard, Step round,
                                   const ShardRoundInputs& inputs) {
  if (!log_.empty() && round <= log_.back().round) {
    // A rollback's re-run revisits logged rounds: overwrite in place
    // (the entries are contiguous, so the offset from the front is the
    // index).
    const std::size_t idx =
        static_cast<std::size_t>(round - log_.front().round);
    DLB_REQUIRE(round >= log_.front().round && idx < log_.size(),
                "shard supervisor: input log received a pruned round");
    log_[idx].per_shard[static_cast<std::size_t>(shard)] = inputs;
    return;
  }
  if (log_.empty() || round > log_.back().round) {
    DLB_REQUIRE(log_.empty() || round == log_.back().round + 1,
                "shard supervisor: input log skipped a round");
    log_.push_back(RoundEntry{
        round,
        std::vector<ShardRoundInputs>(
            static_cast<std::size_t>(engine_->shards()))});
  }
  log_.back().per_shard[static_cast<std::size_t>(shard)] = inputs;
}

std::vector<const ShardRoundInputs*> ShardSupervisor::rounds_for(
    int s) const {
  const Step t0 = ck_t_;
  const Step now = engine_->time();
  std::vector<const ShardRoundInputs*> rounds;
  rounds.reserve(static_cast<std::size_t>(now - t0));
  for (Step r = t0 + 1; r <= now; ++r) {
    DLB_REQUIRE(!log_.empty() && r >= log_.front().round &&
                    r <= log_.back().round,
                "shard supervisor: input log does not cover the replay "
                "window (checkpoint interval vs log pruning bug)");
    rounds.push_back(
        &log_[static_cast<std::size_t>(r - log_.front().round)]
             .per_shard[static_cast<std::size_t>(s)]);
  }
  return rounds;
}

void ShardSupervisor::replay_shard(int s) {
  std::unique_ptr<Balancer> replica;
  if (!stateless_) {
    replica = factory_(opts_.replay_seed);
    DLB_REQUIRE(replica != nullptr,
                "shard supervisor: replay factory returned nothing");
    replica->reset(engine_->graph(), engine_->self_loops());
    StateReader r(std::span<const std::uint8_t>(ck_balancer_.data(),
                                                ck_balancer_.size()));
    replica->load_state(r);
    r.expect_done("replay balancer state");
  }
  const std::vector<const ShardRoundInputs*> rounds = rounds_for(s);
  engine_->recover_shard(
      s, ck_t_, std::span<const Load>(ck_loads_.data(), ck_loads_.size()),
      std::span<const ShardRoundInputs* const>(rounds.data(), rounds.size()),
      replica.get());
  supervisor_metrics().replayed_rounds.inc(
      static_cast<std::uint64_t>(rounds.size()));
  supervisor_metrics().recoveries_replay.inc();
}

void ShardSupervisor::rollback() {
  const Step target = engine_->time();
  // Frames of the abandoned timeline (including a fault injector's
  // delayed posts) must never surface in the re-run.
  engine_->channel().reset();
  {
    StateReader r(
        std::span<const std::uint8_t>(ck_core_.data(), ck_core_.size()));
    engine_->load_core_state(r);  // also revives the dead shards
    r.expect_done("rollback engine core state");
  }
  {
    StateReader r(std::span<const std::uint8_t>(ck_balancer_.data(),
                                                ck_balancer_.size()));
    engine_->balancer().load_state(r);
    r.expect_done("rollback balancer state");
  }
  DLB_REQUIRE((engine_->workload() != nullptr) == ck_has_workload_,
              "shard supervisor: workload attached/detached across a "
              "checkpoint");
  if (ck_has_workload_) {
    StateReader r(std::span<const std::uint8_t>(ck_workload_.data(),
                                                ck_workload_.size()));
    engine_->workload()->load_state(r);
    r.expect_done("rollback workload state");
  }
  // Deterministic components + deterministic (keyed) faults: the re-run
  // reaches the exact bytes the crashed timeline would have.
  engine_->run(target - ck_t_);
  supervisor_metrics().replayed_rounds.inc(
      static_cast<std::uint64_t>(target - ck_t_));
  supervisor_metrics().recoveries_rollback.inc();
}

void ShardSupervisor::recover() {
  const auto t0 = std::chrono::steady_clock::now();
  obs::TraceSpan span("recover", "supervisor", "dead",
                      engine_->dead_shards());
  if (can_replay_) {
    for (int s = 0; s < engine_->shards(); ++s) {
      if (engine_->shard_dead(s)) replay_shard(s);
    }
  } else {
    DLB_REQUIRE(opts_.allow_rollback,
                "shard supervisor: balancer is not replay-safe and "
                "rollback is disabled");
    rollback();
  }
  supervisor_metrics().recovery_seconds.observe(seconds_since(t0));
}

void ShardSupervisor::step() {
  for (CrashEvent& ev : crashes_) {
    if (ev.fired || ev.crash.after_round != engine_->time()) continue;
    ev.fired = true;
    if (!engine_->shard_dead(ev.crash.shard)) {
      engine_->kill_shard(ev.crash.shard);
      supervisor_metrics().crashes.inc();
    }
  }
  if (engine_->dead_shards() > 0) recover();
  engine_->step();
  if (opts_.checkpoint_interval > 0 &&
      engine_->time() % opts_.checkpoint_interval == 0) {
    take_checkpoint();
  }
}

void ShardSupervisor::run(Step steps) {
  DLB_REQUIRE(steps >= 0, "shard supervisor: negative step count");
  for (Step i = 0; i < steps; ++i) step();
}

}  // namespace dlb
