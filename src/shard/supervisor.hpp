// ShardSupervisor: checkpoint-based crash recovery for the sharded engine.
//
// The framed channel protocol (framing.hpp) turns message-level faults —
// drops, duplicates, corruption, delays — back into the byte-exact round
// via drain-time detection and bounded re-post. What it cannot survive is
// a *sender that no longer exists*: a crashed shard leaves its streams
// permanently incomplete and its slice of the load vector gone. The
// supervisor closes that gap with the classic checkpoint/replay recipe:
//
//   * every `checkpoint_interval` rounds it captures the engine state
//     through the same StateWriter paths EngineSnapshot uses (core blob,
//     balancer blob, workload blob, plus the gathered load vector);
//   * between checkpoints it keeps the engine's per-round input log —
//     for each shard, the workload deltas applied to its nodes and the
//     validated inbound channel payloads, i.e. everything a shard's
//     round consumed from outside its slice;
//   * when a shard dies (a FaultPlan crash, or any caller of
//     ShardedEngine::kill_shard), it rebuilds exactly that slice:
//     restore the shard's loads from the checkpoint, then replay the
//     lost rounds against the logged inputs. Peers are never rolled
//     back — their state already reflects the present, and the replayed
//     decides reproduce the lost flows they already received.
//
// Replay needs the dead shard's decides to be re-runnable in isolation:
// the balancer must not read the global load vector in prepare_round
// (prepare_reads_loads), and on the tier-2 path its decide stream must
// not be order-entangled with other shards' (parallel_decide_safe — the
// RAND-* schemes draw from one sequential RNG across all nodes, so a
// single shard's draws cannot be reproduced without stepping everyone).
// Stateful-but-replayable balancers (ROTOR-ROUTER, BOUNDED-ERROR) replay
// on a private replica restored from the checkpoint's balancer blob, so
// the live instance is never rewound. When replay is impossible the
// supervisor falls back to full rollback: restore *every* component from
// the checkpoint, reset the channel, and re-run the lost rounds through
// the engine itself. Both paths land on the byte-identical state the
// uninterrupted run would have reached — the fault-equivalence gate in
// tests/test_shard_fault.cpp asserts it for every registered balancer.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "balancers/registry.hpp"  // BalancerFactory
#include "core/load_vector.hpp"
#include "shard/faulty_channel.hpp"  // FaultPlan
#include "shard/sharded_engine.hpp"

namespace dlb {

class ShardSupervisor final : public ShardInputLog {
 public:
  struct Options {
    /// Rounds between checkpoints; the replay window is at most this
    /// many rounds of logged inputs. 0 disables periodic checkpoints
    /// (the construction-time checkpoint still anchors recovery).
    Step checkpoint_interval = 16;
    /// Crash schedule ("kill shard s once round R has completed") —
    /// typically FaultPlan::parse(...).crashes; message-fault knobs in
    /// the same plan belong to a FaultyChannel, not the supervisor.
    FaultPlan fault_plan;
    /// Permits full-rollback recovery when per-shard replay is
    /// impossible for the engine's balancer. When false, such a crash
    /// throws instead (for tests that pin the recovery path).
    bool allow_rollback = true;
    /// Factory for replay replicas of a stateful balancer. Defaults to
    /// the registry entry under the live balancer's name(); only needed
    /// for stateful balancers constructed outside the registry.
    BalancerFactory replay_factory;
    /// Seed passed to the factory (the replica's constructed state is
    /// overwritten by load_state; the seed only has to produce a
    /// same-shaped instance).
    std::uint64_t replay_seed = 0;
  };

  /// Attaches to `engine` (not owned; must outlive the supervisor) and
  /// takes the anchoring checkpoint at the current time. While attached,
  /// the supervisor owns the engine's input log slot.
  ShardSupervisor(ShardedEngine& engine, Options opts);
  ~ShardSupervisor() override;

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// One supervised round: fire due crashes from the fault plan, recover
  /// any dead shards (replay or rollback), step the engine, and take a
  /// periodic checkpoint when the interval divides the new time.
  void step();
  /// `steps` supervised rounds.
  void run(Step steps);

  ShardedEngine& engine() noexcept { return *engine_; }
  /// True when this (engine, balancer) pair recovers by per-shard
  /// replay; false means crashes recover by full rollback.
  bool can_replay() const noexcept { return can_replay_; }
  /// Time of the newest checkpoint (the replay/rollback anchor).
  Step checkpoint_time() const noexcept { return ck_t_; }
  /// Captures a checkpoint now (also called periodically by step()).
  void take_checkpoint();

  // ShardInputLog: called by the engine after each committed round.
  void record_round(int shard, Step round,
                    const ShardRoundInputs& inputs) override;

 private:
  struct CrashEvent {
    FaultPlan::Crash crash;
    bool fired = false;
  };
  struct RoundEntry {
    Step round = 0;
    std::vector<ShardRoundInputs> per_shard;
  };

  void recover();
  void replay_shard(int s);
  void rollback();
  std::vector<const ShardRoundInputs*> rounds_for(int s) const;

  ShardedEngine* engine_;
  Options opts_;
  bool can_replay_ = false;
  bool stateless_ = false;  ///< balancer blob empty: replay on the live one
  BalancerFactory factory_;  ///< resolved replica factory (may be empty)
  std::vector<CrashEvent> crashes_;

  // The newest checkpoint, kept unserialized for the replay path and as
  // component blobs for the rollback path.
  Step ck_t_ = 0;
  LoadVector ck_loads_;
  std::vector<std::uint8_t> ck_core_;
  std::vector<std::uint8_t> ck_balancer_;
  std::vector<std::uint8_t> ck_workload_;
  bool ck_has_workload_ = false;

  std::deque<RoundEntry> log_;  ///< rounds (ck_t_, engine time], in order
};

}  // namespace dlb
