// The Balancer interface: one synchronous send decision per node per step.
//
// Design note (mirrors the paper's model, Section 1.3): a balancer decides,
// for node u with load x_t(u), how many tokens go over each of the d
// original edges and each of the d° self-loops. Tokens assigned to no port
// form the *remainder* r_t(u) (Section 2 allows r_t(u) < d⁺ without loss of
// generality — Proposition A.2). The engine owns token movement and flow
// accounting; class membership (cumulative fairness, round-fairness,
// s-self-preference) is *observed* by auditors rather than trusted, so a
// buggy balancer fails tests instead of silently producing wrong science.
#pragma once

#include <span>
#include <string>

#include "core/load_vector.hpp"
#include "graph/graph.hpp"

namespace dlb {

/// Per-node, per-step send policy.
///
/// Implementations may keep internal per-node state (rotor positions);
/// stateless algorithms (SEND variants) must depend only on the load.
class Balancer {
 public:
  virtual ~Balancer() = default;

  /// Human-readable algorithm name for reports.
  virtual std::string name() const = 0;

  /// Called once before a run. `d_loops` is the engine's d°; balancers
  /// that need per-node state size it here.
  virtual void reset(const Graph& graph, int d_loops) = 0;

  /// Fills `flows` (size d + d°) with the token counts for step `t`:
  /// entries [0, d) are the original edges in the graph's port order,
  /// entries [d, d+d°) are the self-loops. Unassigned tokens remain at u
  /// as the remainder. The sum of flows must not exceed `load` unless
  /// allows_negative() is true.
  virtual void decide(NodeId u, Load load, Step t, std::span<Load> flows) = 0;

  /// True for schemes (e.g. randomized rounding of [18]) that may send
  /// more than the available load, creating negative loads.
  virtual bool allows_negative() const { return false; }
};

}  // namespace dlb
