// The Balancer interface: send decisions over a node's d + d° ports.
//
// Design note (mirrors the paper's model, Section 1.3): a balancer decides,
// for node u with load x_t(u), how many tokens go over each of the d
// original edges and each of the d° self-loops. Tokens assigned to no port
// form the *remainder* r_t(u) (Section 2 allows r_t(u) < d⁺ without loss of
// generality — Proposition A.2). The engine owns token movement and flow
// accounting; class membership (cumulative fairness, round-fairness,
// s-self-preference) is *observed* by auditors rather than trusted, so a
// buggy balancer fails tests instead of silently producing wrong science.
//
// Two decision entry points exist:
//   decide()     — one node, one step: fills the node's flow row. Every
//                  balancer must implement it; it is the semantic ground
//                  truth and the path observers/auditors always see.
//   decide_all() — one *round*: decides every node of the step in a single
//                  virtual call through a FlowSink. The default
//                  implementation loops over decide(), so third-party
//                  balancers inherit correct batched behavior for free; the
//                  hot schemes override it with tight kernels that scatter
//                  tokens straight into the next-load accumulator without
//                  materializing a flow matrix.
#pragma once

#include <span>
#include <string>

#include "core/load_vector.hpp"
#include "graph/graph.hpp"

namespace dlb {

/// Where a round's decisions land. Created by the engine once per step.
///
/// Two modes:
///   * materialized — `flows()` is a zeroed n×(d+d°) matrix (layout
///     [u*(d+d°) + port]); kernels must fill every node's row *and*
///     scatter the resulting token movement into `next()`. This mode is
///     active whenever a StepObserver needs the full flow matrix.
///   * lazy — `flows()` is null; kernels only scatter into `next()`,
///     paying nothing for flow bookkeeping. This is the hot path.
///
/// `next()` is the next-load accumulator (size n, zeroed): a kernel adds
/// each token's destination — `next[v] += f` for tokens sent over an edge
/// (u→v), `next[u] += kept` for self-loop tokens and the remainder.
class FlowSink {
 public:
  FlowSink(const Graph& g, int d_loops, Load* next, Load* flows)
      : g_(&g), d_loops_(d_loops), d_plus_(g.degree() + d_loops),
        next_(next), flows_(flows) {}

  const Graph& graph() const noexcept { return *g_; }
  int self_loops() const noexcept { return d_loops_; }
  /// d⁺ = d + d°, the width of a flow row.
  int ports() const noexcept { return d_plus_; }

  /// True when the engine needs the full flow matrix this step.
  bool materialized() const noexcept { return flows_ != nullptr; }

  /// Node u's flow row (size d⁺, pre-zeroed). Materialized mode only.
  std::span<Load> row(NodeId u) noexcept {
    return {flows_ + static_cast<std::size_t>(u) * d_plus_,
            static_cast<std::size_t>(d_plus_)};
  }

  /// Raw next-load accumulator (size n, pre-zeroed).
  Load* next() noexcept { return next_; }

 private:
  const Graph* g_;
  int d_loops_;
  int d_plus_;
  Load* next_;
  Load* flows_;  // nullptr in lazy mode
};

/// Per-node (decide) and per-round (decide_all) send policy.
///
/// Implementations may keep internal per-node state (rotor positions);
/// stateless algorithms (SEND variants) must depend only on the load.
class Balancer {
 public:
  virtual ~Balancer() = default;

  /// Human-readable algorithm name for reports.
  virtual std::string name() const = 0;

  /// Called once before a run. `d_loops` is the engine's d°; balancers
  /// that need per-node state size it here.
  virtual void reset(const Graph& graph, int d_loops) = 0;

  /// Fills `flows` (size d + d°) with the token counts for step `t`:
  /// entries [0, d) are the original edges in the graph's port order,
  /// entries [d, d+d°) are the self-loops. Unassigned tokens remain at u
  /// as the remainder. The sum of flows must not exceed `load` unless
  /// allows_negative() is true.
  virtual void decide(NodeId u, Load load, Step t, std::span<Load> flows) = 0;

  /// Decides the whole round at once. The default implementation calls
  /// decide() for every node in ascending order, enforcing the oversend /
  /// negative-flow contract exactly as the classic engine did, and works
  /// in both sink modes. Overrides must be *observationally identical* to
  /// the default (same loads trajectory, same internal state evolution) —
  /// the golden-equivalence test asserts this for every registered
  /// balancer — and may skip flow materialization only when
  /// `sink.materialized()` is false.
  virtual void decide_all(std::span<const Load> loads, Step t, FlowSink& sink);

  /// True for schemes (e.g. randomized rounding of [18]) that may send
  /// more than the available load, creating negative loads.
  virtual bool allows_negative() const { return false; }

  /// True if the balancer itself needs the materialized flow matrix every
  /// step (none of the built-in schemes do); the engine then never takes
  /// the lazy path for it.
  virtual bool wants_flow_matrix() const { return false; }
};

}  // namespace dlb
