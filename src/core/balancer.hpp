// The Balancer interface: send decisions over a node's d + d° ports.
//
// Design note (mirrors the paper's model, Section 1.3): a balancer decides,
// for node u with load x_t(u), how many tokens go over each of the d
// original edges and each of the d° self-loops. Tokens assigned to no port
// form the *remainder* r_t(u) (Section 2 allows r_t(u) < d⁺ without loss of
// generality — Proposition A.2). The engine owns token movement and flow
// accounting; class membership (cumulative fairness, round-fairness,
// s-self-preference) is *observed* by auditors rather than trusted, so a
// buggy balancer fails tests instead of silently producing wrong science.
//
// Decision entry points, from ground truth to hot path:
//   decide()        — one node, one step: fills the node's flow row. Every
//                     balancer must implement it; it is the semantic ground
//                     truth and what observers/auditors ultimately see.
//   decide_range()  — one contiguous node range of a round, through a
//                     FlowSink. The default loops over decide(), enforcing
//                     the oversend / negative-flow contract, so third-party
//                     balancers inherit correct batched behavior for free;
//                     the hot schemes override it with tight kernels.
//                     Ranges are the unit of intra-round parallelism: when
//                     parallel_decide_safe() is true the engine may run
//                     disjoint ranges of the same round concurrently.
//   prepare_round() — once-per-round hook, always called serially before
//                     any decide_range of the round (balancers with shared
//                     per-round state — e.g. CONT-MIMIC's continuous
//                     trajectory — advance it here, keeping decide_range
//                     free of cross-node writes).
//   decide_all()    — convenience: prepare_round + decide_range over all
//                     nodes; what the serial engine step calls.
#pragma once

#include <limits>
#include <span>
#include <string>

#include "core/epoch_accumulator.hpp"
#include "core/load_vector.hpp"
#include "graph/graph.hpp"
#include "util/serial.hpp"

namespace dlb {

/// Where a round's decisions land. Created by the engine once per step.
///
/// Two modes:
///   * row mode — row(u) is node u's per-port record (size d⁺, layout
///     [u*(d+d°) + port]). Kernels fill every node's row and do nothing
///     else; the engine derives the load movement itself by *pulling*
///     each node's incoming flow through rev_port (the apply phase).
///     Because a kernel writes only the rows of its own node range and
///     the apply phase writes only its own range's next loads, row mode
///     has no shared writes — it is the engine's parallel mode, and also
///     serves every StepObserver (the records are exactly the step's
///     flow matrix).
///   * scatter mode — no rows exist; kernels push token movements
///     straight into the epoch-stamped next-load accumulator via add():
///     add(v, f) for tokens sent over an edge (u→v), add(u, kept) for
///     self-loop tokens and the remainder. This is the serial hot path —
///     no per-node record is ever written.
class FlowSink {
 public:
  /// Row mode. `rows` must hold n×(d+d°) entries; rows need not be
  /// pre-zeroed (kernels overwrite every entry of the rows they decide).
  FlowSink(const Graph& g, int d_loops, Load* rows)
      : g_(&g), d_loops_(d_loops), d_plus_(g.degree() + d_loops),
        rows_(rows), acc_(nullptr) {}

  /// Scatter mode. `acc` must be sized to n with begin_round() (or, for
  /// assign-first rounds, begin_round_plain()) called. `assign_first`
  /// selects the plain-adds protocol: the engine only sets it for
  /// balancers declaring assign_first_scatter_safe(), and only on the
  /// serial whole-range path (a partial range's neighbor adds could land
  /// on slots another range has not assigned yet).
  FlowSink(const Graph& g, int d_loops, EpochAccumulator* acc,
           bool assign_first = false)
      : g_(&g), d_loops_(d_loops), d_plus_(g.degree() + d_loops),
        rows_(nullptr), acc_(acc), assign_first_(assign_first) {}

  const Graph& graph() const noexcept { return *g_; }
  int self_loops() const noexcept { return d_loops_; }
  /// d⁺ = d + d°, the width of a flow row.
  int ports() const noexcept { return d_plus_; }

  /// True when kernels must fill per-node rows (row mode); false when
  /// they must scatter through add() (scatter mode).
  bool row_mode() const noexcept { return rows_ != nullptr; }

  /// Node u's per-port record (size d⁺). Row mode only.
  std::span<Load> row(NodeId u) const noexcept {
    return {rows_ + static_cast<std::size_t>(u) * d_plus_,
            static_cast<std::size_t>(d_plus_)};
  }

  /// next[v] += f. Scatter mode only. Convenience for cold call sites —
  /// hot kernels hoist a scatter() view out of their node loop so the
  /// accumulator pointers stay in registers.
  void add(NodeId v, Load f) const noexcept {
    scatter().add(static_cast<std::size_t>(v), f);
  }

  /// Register-resident accumulator view. Scatter mode only.
  EpochAccumulator::Scatter scatter() const noexcept {
    return EpochAccumulator::Scatter(*acc_);
  }

  /// True when this scatter round runs the assign-first protocol: the
  /// kernel must assign() every node's kept load before any add() lands
  /// on that slot (two sweeps over its range), through plain(). False:
  /// use scatter()/add() as usual.
  bool assign_first() const noexcept { return assign_first_; }

  /// Plain assign/add view for assign-first rounds.
  EpochAccumulator::Plain plain() const noexcept {
    return EpochAccumulator::Plain(*acc_);
  }

  /// Emit-fused round statistics. A *single-touch* scatter kernel — one
  /// that writes each slot of its range exactly once with the slot's
  /// final next load (the cycle stencil, the torus row gather) — already
  /// has every emitted value in hand, so it folds the min/max reduction
  /// into the emit sweep and reports it here, together with how many
  /// slots it covered. Ranges merge; when the merged coverage reaches n,
  /// the engine has the round's exact min/max and every slot stamped, and
  /// skips its dedicated post-round pass (finalize_stats / plain_minmax)
  /// — one fewer O(n) sweep per round. Kernels that cannot make the
  /// single-touch guarantee simply never call this; coverage stays short
  /// of n and the engine scans as before.
  void merge_emit_stats(Load lo, Load hi, NodeId covered) noexcept {
    emit_min_ = lo < emit_min_ ? lo : emit_min_;
    emit_max_ = hi > emit_max_ ? hi : emit_max_;
    emit_covered_ += covered;
  }
  NodeId emit_covered() const noexcept { return emit_covered_; }
  Load emit_min() const noexcept { return emit_min_; }
  Load emit_max() const noexcept { return emit_max_; }

 private:
  const Graph* g_;
  int d_loops_;
  int d_plus_;
  Load* rows_;             // nullptr in scatter mode
  EpochAccumulator* acc_;  // nullptr in row mode
  bool assign_first_ = false;
  Load emit_min_ = std::numeric_limits<Load>::max();
  Load emit_max_ = std::numeric_limits<Load>::min();
  NodeId emit_covered_ = 0;
};

/// Per-node (decide) and per-range (decide_range) send policy.
///
/// Implementations may keep internal per-node state (rotor positions);
/// stateless algorithms (SEND variants) must depend only on the load.
class Balancer {
 public:
  virtual ~Balancer() = default;

  /// Human-readable algorithm name for reports.
  virtual std::string name() const = 0;

  /// Called once before a run. `d_loops` is the engine's d°; balancers
  /// that need per-node state size it here.
  virtual void reset(const Graph& graph, int d_loops) = 0;

  /// Fills `flows` (size d + d°) with the token counts for step `t`:
  /// entries [0, d) are the original edges in the graph's port order,
  /// entries [d, d+d°) are the self-loops. Unassigned tokens remain at u
  /// as the remainder. The sum of flows must not exceed `load` unless
  /// allows_negative() is true.
  virtual void decide(NodeId u, Load load, Step t, std::span<Load> flows) = 0;

  /// Once-per-round hook, called serially before any decide_range of the
  /// round. Balancers whose rounds share state beyond per-node slots
  /// advance it here so that decide_range stays free of cross-node
  /// writes. Default: no-op.
  virtual void prepare_round(std::span<const Load> loads, Step t,
                             FlowSink& sink);

  /// Decides nodes [first, last) of the round. The default implementation
  /// calls decide() for every node in ascending order, enforcing the
  /// oversend / negative-flow contract exactly as the classic engine did,
  /// and works in both sink modes. Overrides must be *observationally
  /// identical* to the default (same loads trajectory, same internal
  /// state evolution) — the golden-equivalence test asserts this for
  /// every registered balancer.
  virtual void decide_range(NodeId first, NodeId last,
                            std::span<const Load> loads, Step t,
                            FlowSink& sink);

  /// One whole round: prepare_round() then decide_range() over all
  /// nodes. Declared final so balancers written against the pre-split
  /// API (which overrode decide_all as their kernel entry point) fail to
  /// compile instead of silently losing their kernel — override
  /// decide_range/prepare_round instead.
  virtual void decide_all(std::span<const Load> loads, Step t,
                          FlowSink& sink) final;

  /// Stencil reach of this balancer's windowed gather kernel on `g`, in
  /// linearized ring slots, or −1 when it has no windowed kernel for this
  /// graph. A non-negative reach R is a promise: for every node u, the
  /// next load next(u) is a pure gather over loads at ring distance ≤ R
  /// from u (mod n, in index space), computable by decide_window() from a
  /// halo'd window alone. The sharded engine keys its tier-1 fast path on
  /// this — shards exchange R boundary *loads* before decide instead of
  /// flows after it, and nothing else ever crosses a shard.
  virtual NodeId window_reach(const Graph& g) const;

  /// Windowed gather decide over one shard's slice. `window` holds
  /// `owned + 2·reach` loads: slots [0, reach) are the left halo, slots
  /// [reach, reach + owned) are the owned nodes — globally
  /// [global_begin, global_begin + owned) — and the rest is the right
  /// halo. The kernel must write each owned slot's next load exactly once
  /// through the sink's scatter view *at window indices* (single-touch,
  /// like the structured scatter kernels), fold min/max into the emit
  /// sweep, and report merge_emit_stats(lo, hi, owned). Only called when
  /// window_reach(g) >= 0; the default aborts.
  virtual void decide_window(std::span<const Load> window, NodeId global_begin,
                             NodeId owned, NodeId reach, Step t,
                             FlowSink& sink);

  /// True when prepare_round reads its loads span (e.g. CONT-MIMIC's
  /// step-0 capture). The sharded engine gathers a contiguous global copy
  /// of the loads before the round's prepare_round call iff this is set;
  /// balancers that ignore the span (the default no-op, ROTOR-ROUTER's
  /// lazy table build) skip that O(n) gather. Default: false.
  virtual bool prepare_reads_loads() const { return false; }

  /// True when decide_range over disjoint ranges may run concurrently —
  /// i.e. a node's decision touches only that node's own state (rotor
  /// slots, per-edge carries) plus read-only data. Balancers drawing from
  /// one sequential RNG stream (RAND-EXTRA, RAND-ROUND) must leave this
  /// false; the parallel engine then decides serially (in ascending node
  /// order, so the RNG stream matches the serial path) and parallelizes
  /// only the apply phase. Default: false — safe for any third-party
  /// balancer.
  virtual bool parallel_decide_safe() const { return false; }

  /// True for schemes (e.g. randomized rounding of [18]) that may send
  /// more than the available load, creating negative loads.
  virtual bool allows_negative() const { return false; }

  /// True when this balancer's scatter kernel implements the assign-first
  /// protocol (FlowSink::assign_first): a kept-load assign sweep over the
  /// whole range before the edge-flow add sweep. The engine only drives a
  /// balancer through EngineConfig::assign_first_scatter when it opts in
  /// here. Default: false.
  virtual bool assign_first_scatter_safe() const { return false; }

  /// True if the balancer itself needs the full per-port records every
  /// step (none of the built-in schemes do); the engine then never takes
  /// the scatter path for it.
  virtual bool wants_flow_matrix() const { return false; }

  /// Serializes the balancer's complete mutable run state (everything
  /// reset() does not reconstruct from the constructor arguments: rotor
  /// positions, per-edge carries, RNG words, the CONT-MIMIC continuous
  /// trajectory). Stateless schemes inherit the no-op default. The
  /// crash-recovery contract: for any balancer B reset on graph G,
  /// save_state followed by (reset + load_state on an equal instance)
  /// must reproduce the exact decide trajectory — the snapshot
  /// equivalence gate asserts this for every registered balancer.
  virtual void save_state(StateWriter& w) const;

  /// Restores what save_state captured. Called after reset() on an
  /// instance constructed with the same parameters; must consume the
  /// buffer exactly (the snapshot layer rejects trailing bytes, so a
  /// field forgotten on either side is a caught error, not silent
  /// drift). Throws serial_error / invariant_error on any mismatch.
  virtual void load_state(StateReader& r);
};

}  // namespace dlb
