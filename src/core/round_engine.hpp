// RoundEngineBase: the stepping substrate shared by every synchronous
// round engine in the library (the diffusive Engine, the irregular-graph
// IrregularEngine, and the matching-model DimensionExchange).
//
// The base owns everything the three engines used to copy-paste:
//   * the load vector, the step counter, and the conserved total;
//   * the run()/run_until_discrepancy() driver loops;
//   * the token-conservation audit, gated to every k-th step so that the
//     O(n) re-sum does not tax hot kernels (k = 1 preserves the classic
//     every-step behavior);
//   * a fused post-step statistics pass that computes min and max load in
//     one sweep, so discrepancy(), min_load_seen(), and the
//     run_until_discrepancy() stop test never re-scan the load vector —
//     and, for pure run(T) workloads, can be deferred entirely
//     (set_deferred_stats) so steps pay nothing and observables are
//     recomputed on demand;
//   * the intra-round parallel dispatch: set_thread_pool() attaches a
//     ThreadPool, step_parallel() (and the run loops, once a pool is
//     attached) routes through the subclass's do_step_parallel(). The
//     decide/apply engines guarantee a parallel round is byte-identical
//     to a serial one at any thread count;
//   * the online-workload hook: set_workload() attaches a
//     WorkloadProcess whose per-node deltas are applied before every
//     round (injection/consumption), with the conservation audit
//     extended to the dynamic invariant Σx == Σx₀ + injected − consumed.
//
// Subclasses implement do_step(), which must advance loads_ by exactly one
// synchronous round (and may fan out to observers before publishing the
// new loads); the base then increments time and refreshes the audit and
// the cached statistics. Engines with a contention-free two-phase round
// additionally override do_step_parallel().
#pragma once

#include <cstdint>
#include <memory>

#include "core/load_vector.hpp"
#include "util/serial.hpp"

namespace dlb {

namespace obs {
struct EngineTelemetry;
}  // namespace obs

class ThreadPool;
class WorkloadProcess;

/// Conservation-audit policy of a round engine.
struct ConservationPolicy {
  bool enabled = true;  ///< verify Σx == total after (gated) steps
  int interval = 1;     ///< audit every `interval`-th step (>= 1)

  /// Amortized audit for engines whose pre-refactor check was a
  /// debug-only assert: still always on, but the O(n) re-sum lands on one
  /// step in 64, which is noise next to the O(n·d) step work.
  static ConservationPolicy gated() { return {true, 64}; }
};

class RoundEngineBase {
 public:
  virtual ~RoundEngineBase();

  RoundEngineBase(const RoundEngineBase&) = delete;
  RoundEngineBase& operator=(const RoundEngineBase&) = delete;

  /// Attaches a worker pool (not owned; must outlive the engine's runs).
  /// Once attached, step_parallel() and the run loops execute rounds
  /// through the engine's parallel two-phase pipeline; results are
  /// identical to the serial path at any pool size. Pass nullptr to
  /// detach.
  void set_thread_pool(ThreadPool* pool) noexcept { pool_ = pool; }
  ThreadPool* thread_pool() const noexcept { return pool_; }

  /// Attaches an online workload (not owned; must outlive the engine's
  /// runs; nullptr detaches). Before every subsequent round the engine
  /// applies the process's per-node deltas: positive deltas inject
  /// tokens, negative deltas consume — truncated at zero load, so churn
  /// never drives a node negative on its own (nodes already negative
  /// under an allows_negative() balancer contribute nothing). Injection
  /// composes with parallel rounds: when the process is
  /// parallel_generate_safe(), deltas of disjoint node ranges are
  /// generated and applied concurrently, byte-identically to the serial
  /// order.
  void set_workload(WorkloadProcess* workload) noexcept {
    workload_ = workload;
  }
  WorkloadProcess* workload() const noexcept { return workload_; }

  /// Tokens the workload injected / consumed since adopt_loads. The
  /// conservation audit verifies Σx == base_total() + injected_total()
  /// − consumed_total() on every audited step.
  Load injected_total() const noexcept { return injected_total_; }
  Load consumed_total() const noexcept { return consumed_total_; }
  /// Σx₀: the static part of the conservation identity.
  Load base_total() const noexcept { return base_total_; }

  /// Executes one synchronous round (serial path) plus shared bookkeeping.
  void step();

  /// Executes one round through the parallel pipeline when a pool with
  /// parallelism > 1 is attached; identical results to step().
  void step_parallel();

  /// Executes `steps` rounds (parallel rounds once a pool is attached).
  void run(Step steps);

  /// Runs until discrepancy() <= target or max_steps elapse; returns the
  /// number of *additional* steps taken.
  Step run_until_discrepancy(Load target, Step max_steps);

  /// When deferred, the fused per-step min/max pass is skipped and
  /// discrepancy()/min_load_seen() recompute on demand (and on gated
  /// conservation audits). min_load_seen() then reflects only the steps
  /// at which statistics were actually refreshed — pure run(T) workloads
  /// that only read the final state trade that fidelity for one less
  /// O(n) pass per step.
  void set_deferred_stats(bool deferred) noexcept { deferred_stats_ = deferred; }

  const LoadVector& loads() const noexcept { return loads_; }
  Step time() const noexcept { return t_; }
  /// Conserved total: Σx₀ plus the net workload churn so far.
  Load total() const noexcept { return total_; }

  /// max − min of the current loads; O(1) from the fused step statistics
  /// (recomputed on demand in deferred-stats mode).
  Load discrepancy() const noexcept {
    refresh_if_dirty();
    return max_load_ - min_load_;
  }
  double average() const {
    return static_cast<double>(total_) / static_cast<double>(loads_.size());
  }

  /// Minimum load ever observed on any node (negative iff the balancer
  /// drove some node negative, cf. the NL column of Table 1). In
  /// deferred-stats mode, only refreshed steps contribute.
  Load min_load_seen() const noexcept {
    refresh_if_dirty();
    return min_load_seen_;
  }

  /// Serializes the complete core stepping state: the load vector, the
  /// round counter, the conservation ledger (base/injected/consumed
  /// totals), and the cached statistics (including the dirty flag, so a
  /// deferred-stats run restores the exact same observable history it
  /// would have had uninterrupted). Audit policy, pool, and workload
  /// attachment are construction-time configuration and are NOT
  /// captured — the restore target must be configured identically.
  void save_core_state(StateWriter& w) const;

  /// Restores what save_core_state captured into an engine whose load
  /// vector has the same size; throws serial_error on size mismatch
  /// before mutating anything.
  void load_core_state(StateReader& r);

 protected:
  RoundEngineBase();

  /// Installs the initial load vector (must be non-empty) and the audit
  /// policy; computes the conserved total and primes the cached stats.
  void adopt_loads(LoadVector initial, ConservationPolicy audit);

  /// Telemetry label of this engine's metric series ("flat", "sharded",
  /// "irregular", ...). Consulted lazily on the first round that runs
  /// with the metrics registry armed.
  virtual const char* engine_kind() const noexcept { return "flat"; }

  /// Advances loads_ by one round. Runs with the *pre-increment* time();
  /// implementations that notify observers label the step time() + 1.
  virtual void do_step() = 0;

  /// Advances loads_ by one round using `pool` for intra-round
  /// parallelism; must produce exactly the loads do_step() would.
  /// Default: falls back to the serial round.
  virtual void do_step_parallel(ThreadPool& pool);

  /// Subclasses whose round already sweeps the new load vector (the
  /// engine's apply pull or the scatter accumulator's finalize) publish
  /// the min/max they computed in that same sweep here, from inside
  /// do_step()/do_step_parallel(). after_step() then commits them
  /// instead of re-scanning loads_ — one fewer O(n) pass per round.
  /// Gated conservation audits still re-sum (and re-derive min/max) from
  /// the loads themselves, so a wrong published value cannot survive an
  /// audited step. The publication is consumed by the next after_step()
  /// only; rounds that do not publish keep the classic refresh behavior.
  void publish_round_stats(Load lo, Load hi) noexcept {
    round_min_ = lo;
    round_max_ = hi;
    round_stats_valid_ = true;
  }

  LoadVector loads_;

 private:
  /// One fused pass over loads_: min/max always, Σx when auditing.
  void refresh_stats(bool audit_total) const;
  void refresh_if_dirty() const {
    if (stats_dirty_) refresh_stats(false);
  }
  /// Post-round bookkeeping shared by step() and step_parallel().
  void after_step();
  /// Metrics begin/commit around one round. round_begin() returns a
  /// monotonic start stamp iff the registry is armed (0 otherwise);
  /// round_end(0) is a no-op, so a disarmed round pays one relaxed load
  /// per call. round_end publishes the round counter, latency, ledger
  /// totals, and — only when the cached statistics are clean, never by
  /// forcing a refresh — the min/max/discrepancy gauges. Telemetry
  /// reads engine state exclusively; it cannot perturb determinism.
  std::uint64_t round_begin() const noexcept;
  void round_end(std::uint64_t start_ns);
  /// Applies the attached workload's deltas for round t_ (no-op without
  /// one). `pool` may be null; it is only used when the process allows
  /// parallel generation.
  void apply_workload(ThreadPool* pool);

  Step t_ = 0;
  Load total_ = 0;
  Load base_total_ = 0;
  Load injected_total_ = 0;
  Load consumed_total_ = 0;
  mutable Load min_load_ = 0;
  mutable Load max_load_ = 0;
  mutable Load min_load_seen_ = 0;
  mutable bool stats_dirty_ = false;
  bool deferred_stats_ = false;
  Load round_min_ = 0;
  Load round_max_ = 0;
  bool round_stats_valid_ = false;
  ConservationPolicy audit_;
  ThreadPool* pool_ = nullptr;
  WorkloadProcess* workload_ = nullptr;
  /// Lazily-registered metric handles (null until a round runs with the
  /// registry armed).
  std::unique_ptr<obs::EngineTelemetry> telemetry_;
};

}  // namespace dlb
