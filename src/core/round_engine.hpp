// RoundEngineBase: the stepping substrate shared by every synchronous
// round engine in the library (the diffusive Engine, the irregular-graph
// IrregularEngine, and the matching-model DimensionExchange).
//
// The base owns everything the three engines used to copy-paste:
//   * the load vector, the step counter, and the conserved total;
//   * the run()/run_until_discrepancy() driver loops;
//   * the token-conservation audit, gated to every k-th step so that the
//     O(n) re-sum does not tax hot kernels (k = 1 preserves the classic
//     every-step behavior);
//   * a fused post-step statistics pass that computes min and max load in
//     one sweep, so discrepancy(), min_load_seen(), and the
//     run_until_discrepancy() stop test never re-scan the load vector.
//
// Subclasses implement do_step(), which must advance loads_ by exactly one
// synchronous round (and may fan out to observers before publishing the
// new loads); the base then increments time and refreshes the audit and
// the cached statistics.
#pragma once

#include <cstdint>

#include "core/load_vector.hpp"

namespace dlb {

/// Conservation-audit policy of a round engine.
struct ConservationPolicy {
  bool enabled = true;  ///< verify Σx == total after (gated) steps
  int interval = 1;     ///< audit every `interval`-th step (>= 1)

  /// Amortized audit for engines whose pre-refactor check was a
  /// debug-only assert: still always on, but the O(n) re-sum lands on one
  /// step in 64, which is noise next to the O(n·d) step work.
  static ConservationPolicy gated() { return {true, 64}; }
};

class RoundEngineBase {
 public:
  virtual ~RoundEngineBase() = default;

  RoundEngineBase(const RoundEngineBase&) = delete;
  RoundEngineBase& operator=(const RoundEngineBase&) = delete;

  /// Executes one synchronous round plus shared bookkeeping.
  void step();

  /// Executes `steps` rounds.
  void run(Step steps);

  /// Runs until discrepancy() <= target or max_steps elapse; returns the
  /// number of *additional* steps taken.
  Step run_until_discrepancy(Load target, Step max_steps);

  const LoadVector& loads() const noexcept { return loads_; }
  Step time() const noexcept { return t_; }
  Load total() const noexcept { return total_; }

  /// max − min of the current loads; O(1) from the fused step statistics.
  Load discrepancy() const noexcept { return max_load_ - min_load_; }
  double average() const {
    return static_cast<double>(total_) / static_cast<double>(loads_.size());
  }

  /// Minimum load ever observed on any node (negative iff the balancer
  /// drove some node negative, cf. the NL column of Table 1).
  Load min_load_seen() const noexcept { return min_load_seen_; }

 protected:
  RoundEngineBase() = default;

  /// Installs the initial load vector (must be non-empty) and the audit
  /// policy; computes the conserved total and primes the cached stats.
  void adopt_loads(LoadVector initial, ConservationPolicy audit);

  /// Advances loads_ by one round. Runs with the *pre-increment* time();
  /// implementations that notify observers label the step time() + 1.
  virtual void do_step() = 0;

  LoadVector loads_;

 private:
  /// One fused pass over loads_: min/max always, Σx when auditing.
  void refresh_stats(bool audit_total);

  Step t_ = 0;
  Load total_ = 0;
  Load min_load_ = 0;
  Load max_load_ = 0;
  Load min_load_seen_ = 0;
  ConservationPolicy audit_;
};

}  // namespace dlb
