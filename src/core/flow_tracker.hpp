// Cumulative flow accounting F_t(e) = Σ_{τ≤t} f_τ(e).
//
// Definition 2.1 (cumulative δ-fairness) and the lower-bound proofs all
// quantify over cumulative per-edge flows, so the tracker stores one
// counter per directed original edge and per self-loop, updated from the
// engine's step callback.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/engine.hpp"

namespace dlb {

/// Observer that accumulates F_t(e) for every port of every node.
class FlowTracker : public StepObserver {
 public:
  FlowTracker() = default;

  void on_step(Step t, const Graph& g, int d_loops,
               std::span<const Load> pre, std::span<const Load> flows,
               std::span<const Load> post) override;

  /// Cumulative tokens sent over the `port`-th original edge of u.
  Load cumulative(NodeId u, int port) const;

  /// Cumulative tokens over the `loop`-th self-loop of u (loop < d°).
  Load cumulative_self_loop(NodeId u, int loop) const;

  /// Cumulative out-flow F_t^out(u) over all ports (edges + self-loops),
  /// excluding remainders.
  Load cumulative_out(NodeId u) const;

  /// Max over original-edge pairs of |F(e1) − F(e2)| at node u (the
  /// quantity bounded by δ in Definition 2.1).
  Load edge_imbalance(NodeId u) const;

  /// Max edge_imbalance over all nodes (the empirical δ of the run).
  Load max_edge_imbalance() const;

  Step steps_observed() const noexcept { return steps_; }

 private:
  bool initialized_ = false;
  NodeId n_ = 0;
  int d_ = 0;
  int d_loops_ = 0;
  Step steps_ = 0;
  std::vector<Load> cum_;  // n * (d + d°), same layout as engine flows
};

}  // namespace dlb
