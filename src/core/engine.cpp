#include "core/engine.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "graph/topology.hpp"
#include "obs/trace.hpp"
#include "util/assertions.hpp"
#include "util/thread_pool.hpp"

namespace dlb {

namespace {

/// Phase-latency histograms of the flat engine, registered once on first
/// use (leaked: handle lifetime must cover static teardown).
struct FlatPhases {
  obs::Histogram& prepare;
  obs::Histogram& decide;
  obs::Histogram& apply;
  obs::Histogram& scatter;  ///< fused decide+apply of the implicit path
};

FlatPhases& flat_phases() {
  static FlatPhases* p = [] {
    auto& reg = obs::MetricsRegistry::instance();
    const std::string name = "dlb_engine_phase_seconds";
    const std::string help =
        "Wall-clock latency of one engine phase within a round.";
    return new FlatPhases{
        reg.histogram(name, help, obs::phase_seconds_bounds(),
                      {{"engine", "flat"}, {"phase", "prepare"}}),
        reg.histogram(name, help, obs::phase_seconds_bounds(),
                      {{"engine", "flat"}, {"phase", "decide"}}),
        reg.histogram(name, help, obs::phase_seconds_bounds(),
                      {{"engine", "flat"}, {"phase", "apply"}}),
        reg.histogram(name, help, obs::phase_seconds_bounds(),
                      {{"engine", "flat"}, {"phase", "scatter"}}),
    };
  }();
  return *p;
}

}  // namespace

Engine::Engine(const Graph& g, EngineConfig config, Balancer& balancer,
               LoadVector initial)
    : g_(&g), config_(config), balancer_(&balancer) {
  DLB_REQUIRE(config_.self_loops >= 0, "self_loops must be non-negative");
  DLB_REQUIRE(initial.size() == static_cast<std::size_t>(g.num_nodes()),
              "initial load vector has wrong size");
  adopt_loads(std::move(initial),
              ConservationPolicy{config_.check_conservation,
                                 config_.conservation_interval});
  next_.assign(loads_.size(), 0);
  acc_.reset(loads_.size());
  balancer_->reset(g, config_.self_loops);
}

void Engine::add_observer(StepObserver& observer) {
  observers_.push_back(&observer);
}

void Engine::ensure_rows() {
  const std::size_t size =
      loads_.size() * static_cast<std::size_t>(balancing_degree());
  if (flows_.size() != size) flows_.assign(size, 0);
}

template <class Topo>
void Engine::apply_rows(const Topo& topo, NodeId first, NodeId last,
                        Load* next, Load& range_min, Load& range_max) const {
  const int d = topo.degree();
  const int d_plus = balancing_degree();
  const Load* rows = flows_.data();
  const bool negatives_ok = balancer_->allows_negative();
  Load lo = std::numeric_limits<Load>::max();
  Load hi = std::numeric_limits<Load>::min();
  auto cur = topo.cursor(first);
  for (NodeId v = first; v < last; ++v, cur.advance()) {
    const Load* own = rows + static_cast<std::size_t>(v) * d_plus;
    // kept(v) = x(v) − Σ edge flows out of v: the remainder plus every
    // self-loop share, without reading the self-loop slots.
    Load acc = loads_[static_cast<std::size_t>(v)];
    for (int p = 0; p < d; ++p) acc -= own[p];
    // The oversend contract on the movement that matters: edge flows
    // beyond the available load would go unnoticed here otherwise — the
    // pull phase conserves totals even for a buggy kernel, so the
    // conservation audit cannot catch it.
    DLB_REQUIRE(negatives_ok || acc >= 0,
                "balancer sent more tokens than available");
#ifndef NDEBUG
    // Debug builds also audit the self-loop slots (they never move
    // tokens, but observers consume them as the flow matrix): the full
    // row must not assign more than the available load either.
    if (!negatives_ok) {
      Load self_assigned = 0;
      for (int p = d; p < d_plus; ++p) self_assigned += own[p];
      DLB_ASSERT(self_assigned >= 0 && self_assigned <= acc,
                 "row kernel over-assigned self-loop ports");
    }
#endif
    for (int p = 0; p < d; ++p) {
      acc += rows[static_cast<std::size_t>(cur.neighbor(p)) * d_plus +
                  cur.rev_port(p)];
    }
    next[static_cast<std::size_t>(v)] = acc;
    lo = std::min(lo, acc);
    hi = std::max(hi, acc);
  }
  range_min = lo;
  range_max = hi;
}

namespace {

/// Lock-free min/max merge for the parallel apply's per-range results
/// (called once per range, so contention is irrelevant).
void atomic_min(std::atomic<Load>& a, Load v) noexcept {
  Load cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<Load>& a, Load v) noexcept {
  Load cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Engine::step_rows(ThreadPool* pool) {
  ensure_rows();
  const NodeId n = g_->num_nodes();
  FlowSink sink(*g_, config_.self_loops, flows_.data());
  {
    obs::PhaseScope phase(flat_phases().prepare, "prepare", "flat", "t",
                          time() + 1);
    balancer_->prepare_round(loads_, time(), sink);
  }
  {
    obs::PhaseScope phase(flat_phases().decide, "decide", "flat", "t",
                          time() + 1);
    if (pool != nullptr && balancer_->parallel_decide_safe()) {
      pool->for_ranges(n, [&](std::int64_t first, std::int64_t last) {
        balancer_->decide_range(static_cast<NodeId>(first),
                                static_cast<NodeId>(last), loads_, time(),
                                sink);
      });
    } else {
      // Serial decide in ascending node order: balancers with a
      // sequential RNG stream consume it exactly as the serial path does.
      balancer_->decide_range(0, n, loads_, time(), sink);
    }
  }
  obs::PhaseScope phase(flat_phases().apply, "apply", "flat", "t", time() + 1);
  // The pull phase dispatches on the topology tag once per round: on
  // cycle/torus/hypercube every neighbor and rev_port is computed in
  // registers, the tables are never streamed.
  Load round_min = 0;
  Load round_max = 0;
  with_topology(*g_, [&](const auto& topo) {
    if (pool != nullptr) {
      std::atomic<Load> lo{std::numeric_limits<Load>::max()};
      std::atomic<Load> hi{std::numeric_limits<Load>::min()};
      pool->for_ranges(n, [&](std::int64_t first, std::int64_t last) {
        Load range_min;
        Load range_max;
        apply_rows(topo, static_cast<NodeId>(first), static_cast<NodeId>(last),
                   next_.data(), range_min, range_max);
        atomic_min(lo, range_min);
        atomic_max(hi, range_max);
      });
      round_min = lo.load(std::memory_order_relaxed);
      round_max = hi.load(std::memory_order_relaxed);
    } else {
      apply_rows(topo, 0, n, next_.data(), round_min, round_max);
    }
  });
  for (StepObserver* o : observers_) {
    o->on_step(time() + 1, *g_, config_.self_loops, loads_, flows_, next_);
  }
  loads_.swap(next_);
  publish_round_stats(round_min, round_max);
}

void Engine::do_step() {
  if (!observers_.empty() || balancer_->wants_flow_matrix()) {
    step_rows(nullptr);
    return;
  }
  Load round_min = 0;
  Load round_max = 0;
  const NodeId n = g_->num_nodes();
  obs::PhaseScope phase(flat_phases().scatter, "scatter", "flat", "t",
                        time() + 1);
  if (config_.assign_first_scatter && balancer_->assign_first_scatter_safe()) {
    // Assign-first protocol: the kernel's kept-load assign sweep is the
    // logical zero-fill, edge flows are plain adds — no epoch stamps.
    acc_.begin_round_plain();
    FlowSink sink(*g_, config_.self_loops, &acc_, /*assign_first=*/true);
    balancer_->decide_all(loads_, time(), sink);
    if (sink.emit_covered() == n) {
      // Single-touch kernel folded the min/max into its emit sweep over
      // the whole round — the dedicated stats pass disappears.
      round_min = sink.emit_min();
      round_max = sink.emit_max();
    } else {
      acc_.plain_minmax(round_min, round_max);
    }
  } else {
    acc_.begin_round();
    FlowSink sink(*g_, config_.self_loops, &acc_);
    balancer_->decide_all(loads_, time(), sink);
    if (sink.emit_covered() == n) {
      // Single-touch kernel: every slot was written (and stamped) exactly
      // once with its final value, min/max folded into the emit sweep —
      // no stale slots can exist, so finalize_stats' whole sweep
      // (stale-fixup + stats) is recovered.
      round_min = sink.emit_min();
      round_max = sink.emit_max();
    } else {
      // Stale-slot fixup and the round's min/max share one sweep; the
      // base then skips its own stats pass over the swapped-in vector.
      acc_.finalize_stats(round_min, round_max);
    }
  }
  loads_.swap(acc_.values());
  publish_round_stats(round_min, round_max);
}

void Engine::do_step_parallel(ThreadPool& pool) { step_rows(&pool); }

}  // namespace dlb
