#include "core/engine.hpp"

#include <algorithm>

#include "util/assertions.hpp"

namespace dlb {

Engine::Engine(const Graph& g, EngineConfig config, Balancer& balancer,
               LoadVector initial)
    : g_(&g), config_(config), balancer_(&balancer),
      loads_(std::move(initial)) {
  DLB_REQUIRE(config_.self_loops >= 0, "self_loops must be non-negative");
  DLB_REQUIRE(loads_.size() == static_cast<std::size_t>(g.num_nodes()),
              "initial load vector has wrong size");
  next_.assign(loads_.size(), 0);
  flows_.assign(loads_.size() *
                    static_cast<std::size_t>(g.degree() + config_.self_loops),
                0);
  total_ = total_load(loads_);
  min_load_seen_ = min_load(loads_);
  balancer_->reset(g, config_.self_loops);
}

void Engine::add_observer(StepObserver& observer) {
  observers_.push_back(&observer);
}

void Engine::step() {
  const NodeId n = g_->num_nodes();
  const int d = g_->degree();
  const int d_plus = d + config_.self_loops;
  const bool negatives_ok = balancer_->allows_negative();

  std::fill(flows_.begin(), flows_.end(), 0);
  std::fill(next_.begin(), next_.end(), 0);

  // Phase 1: collect decisions and keep self-loop tokens + remainder local.
  for (NodeId u = 0; u < n; ++u) {
    const Load x = loads_[static_cast<std::size_t>(u)];
    const std::span<Load> row{
        flows_.data() + static_cast<std::size_t>(u) * d_plus,
        static_cast<std::size_t>(d_plus)};
    balancer_->decide(u, x, t_, row);

    Load sent = 0;
    for (int p = 0; p < d_plus; ++p) {
      DLB_ASSERT(negatives_ok || row[static_cast<std::size_t>(p)] >= 0,
                 "balancer produced a negative flow");
      sent += row[static_cast<std::size_t>(p)];
    }
    const Load remainder = x - sent;
    DLB_REQUIRE(negatives_ok || remainder >= 0,
                "balancer sent more tokens than available");

    Load kept = remainder;
    for (int p = d; p < d_plus; ++p) kept += row[static_cast<std::size_t>(p)];
    next_[static_cast<std::size_t>(u)] += kept;
  }

  // Phase 2: deliver original-edge flows.
  for (NodeId u = 0; u < n; ++u) {
    const Load* row = flows_.data() + static_cast<std::size_t>(u) * d_plus;
    for (int p = 0; p < d; ++p) {
      next_[static_cast<std::size_t>(g_->neighbor(u, p))] += row[p];
    }
  }

  ++t_;
  if (config_.check_conservation) {
    DLB_REQUIRE(total_load(next_) == total_,
                "token conservation violated by engine step");
  }
  for (StepObserver* o : observers_) {
    o->on_step(t_, *g_, config_.self_loops, loads_, flows_, next_);
  }
  loads_.swap(next_);
  min_load_seen_ = std::min(min_load_seen_, min_load(loads_));
}

void Engine::run(Step steps) {
  DLB_REQUIRE(steps >= 0, "run: negative step count");
  for (Step i = 0; i < steps; ++i) step();
}

Step Engine::run_until_discrepancy(Load target, Step max_steps) {
  DLB_REQUIRE(max_steps >= 0, "run_until_discrepancy: negative cap");
  for (Step i = 0; i < max_steps; ++i) {
    if (discrepancy() <= target) return i;
    step();
  }
  return max_steps;
}

}  // namespace dlb
