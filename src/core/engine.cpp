#include "core/engine.hpp"

#include <algorithm>

#include "util/assertions.hpp"
#include "util/thread_pool.hpp"

namespace dlb {

Engine::Engine(const Graph& g, EngineConfig config, Balancer& balancer,
               LoadVector initial)
    : g_(&g), config_(config), balancer_(&balancer) {
  DLB_REQUIRE(config_.self_loops >= 0, "self_loops must be non-negative");
  DLB_REQUIRE(initial.size() == static_cast<std::size_t>(g.num_nodes()),
              "initial load vector has wrong size");
  adopt_loads(std::move(initial),
              ConservationPolicy{config_.check_conservation,
                                 config_.conservation_interval});
  next_.assign(loads_.size(), 0);
  acc_.reset(loads_.size());
  balancer_->reset(g, config_.self_loops);
}

void Engine::add_observer(StepObserver& observer) {
  observers_.push_back(&observer);
}

void Engine::ensure_rows() {
  const std::size_t size =
      loads_.size() * static_cast<std::size_t>(balancing_degree());
  if (flows_.size() != size) flows_.assign(size, 0);
}

void Engine::apply_rows(NodeId first, NodeId last, Load* next) const {
  const int d = g_->degree();
  const int d_plus = balancing_degree();
  const Load* rows = flows_.data();
  const bool negatives_ok = balancer_->allows_negative();
  for (NodeId v = first; v < last; ++v) {
    const Load* own = rows + static_cast<std::size_t>(v) * d_plus;
    // kept(v) = x(v) − Σ edge flows out of v: the remainder plus every
    // self-loop share, without reading the self-loop slots.
    Load acc = loads_[static_cast<std::size_t>(v)];
    for (int p = 0; p < d; ++p) acc -= own[p];
    // The oversend contract on the movement that matters: edge flows
    // beyond the available load would go unnoticed here otherwise — the
    // pull phase conserves totals even for a buggy kernel, so the
    // conservation audit cannot catch it.
    DLB_REQUIRE(negatives_ok || acc >= 0,
                "balancer sent more tokens than available");
#ifndef NDEBUG
    // Debug builds also audit the self-loop slots (they never move
    // tokens, but observers consume them as the flow matrix): the full
    // row must not assign more than the available load either.
    if (!negatives_ok) {
      Load self_assigned = 0;
      for (int p = d; p < d_plus; ++p) self_assigned += own[p];
      DLB_ASSERT(self_assigned >= 0 && self_assigned <= acc,
                 "row kernel over-assigned self-loop ports");
    }
#endif
    for (int p = 0; p < d; ++p) {
      acc += rows[static_cast<std::size_t>(g_->neighbor(v, p)) * d_plus +
                  g_->rev_port(v, p)];
    }
    next[static_cast<std::size_t>(v)] = acc;
  }
}

void Engine::step_rows(ThreadPool* pool) {
  ensure_rows();
  const NodeId n = g_->num_nodes();
  FlowSink sink(*g_, config_.self_loops, flows_.data());
  balancer_->prepare_round(loads_, time(), sink);
  if (pool != nullptr && balancer_->parallel_decide_safe()) {
    pool->for_ranges(n, [&](std::int64_t first, std::int64_t last) {
      balancer_->decide_range(static_cast<NodeId>(first),
                              static_cast<NodeId>(last), loads_, time(), sink);
    });
  } else {
    // Serial decide in ascending node order: balancers with a sequential
    // RNG stream consume it exactly as the serial path does.
    balancer_->decide_range(0, n, loads_, time(), sink);
  }
  if (pool != nullptr) {
    pool->for_ranges(n, [&](std::int64_t first, std::int64_t last) {
      apply_rows(static_cast<NodeId>(first), static_cast<NodeId>(last),
                 next_.data());
    });
  } else {
    apply_rows(0, n, next_.data());
  }
  for (StepObserver* o : observers_) {
    o->on_step(time() + 1, *g_, config_.self_loops, loads_, flows_, next_);
  }
  loads_.swap(next_);
}

void Engine::do_step() {
  if (!observers_.empty() || balancer_->wants_flow_matrix()) {
    step_rows(nullptr);
    return;
  }
  acc_.begin_round();
  FlowSink sink(*g_, config_.self_loops, &acc_);
  balancer_->decide_all(loads_, time(), sink);
  acc_.finalize();
  loads_.swap(acc_.values());
}

void Engine::do_step_parallel(ThreadPool& pool) { step_rows(&pool); }

}  // namespace dlb
