#include "core/engine.hpp"

#include <algorithm>

#include "util/assertions.hpp"

namespace dlb {

Engine::Engine(const Graph& g, EngineConfig config, Balancer& balancer,
               LoadVector initial)
    : g_(&g), config_(config), balancer_(&balancer) {
  DLB_REQUIRE(config_.self_loops >= 0, "self_loops must be non-negative");
  DLB_REQUIRE(initial.size() == static_cast<std::size_t>(g.num_nodes()),
              "initial load vector has wrong size");
  adopt_loads(std::move(initial),
              ConservationPolicy{config_.check_conservation,
                                 config_.conservation_interval});
  next_.assign(loads_.size(), 0);
  balancer_->reset(g, config_.self_loops);
}

void Engine::add_observer(StepObserver& observer) {
  observers_.push_back(&observer);
}

void Engine::do_step() {
  std::fill(next_.begin(), next_.end(), 0);

  const bool materialize =
      !observers_.empty() || balancer_->wants_flow_matrix();
  if (materialize) {
    const std::size_t flow_size =
        loads_.size() * static_cast<std::size_t>(balancing_degree());
    if (flows_.size() != flow_size) {
      flows_.assign(flow_size, 0);
    } else {
      std::fill(flows_.begin(), flows_.end(), 0);
    }
    FlowSink sink(*g_, config_.self_loops, next_.data(), flows_.data());
    balancer_->decide_all(loads_, time(), sink);
    for (StepObserver* o : observers_) {
      o->on_step(time() + 1, *g_, config_.self_loops, loads_, flows_, next_);
    }
  } else {
    FlowSink sink(*g_, config_.self_loops, next_.data(), nullptr);
    balancer_->decide_all(loads_, time(), sink);
  }
  loads_.swap(next_);
}

}  // namespace dlb
