#include "core/fairness.hpp"

#include <algorithm>

#include "util/assertions.hpp"
#include "util/intmath.hpp"

namespace dlb {

void FairnessAuditor::on_step(Step /*t*/, const Graph& g, int d_loops,
                              std::span<const Load> pre,
                              std::span<const Load> flows,
                              std::span<const Load> /*post*/) {
  if (!initialized_) {
    n_ = g.num_nodes();
    d_ = g.degree();
    d_loops_ = d_loops;
    cum_.assign(static_cast<std::size_t>(n_) * d_, 0);
    initialized_ = true;
  }
  const int d_plus = d_ + d_loops_;

  for (NodeId u = 0; u < n_; ++u) {
    const Load x = pre[static_cast<std::size_t>(u)];
    const Load* row = flows.data() + static_cast<std::size_t>(u) * d_plus;
    const Load floor_share = floor_div(x, d_plus);
    const Load ceil_share = ceil_div(x, d_plus);
    const Load excess = x - d_plus * floor_share;  // e(u) ∈ [0, d⁺)

    Load sent = 0;
    Load ceil_self_loops = 0;
    for (int p = 0; p < d_plus; ++p) {
      const Load f = row[p];
      sent += f;
      if (f < 0) report_.negative_seen = true;
      if (f < floor_share) report_.floor_condition_ok = false;
      if (f != floor_share && f != ceil_share) report_.round_fair = false;
      if (p >= d_ && excess > 0 && f >= ceil_share) ++ceil_self_loops;
    }

    const Load remainder = x - sent;
    if (remainder < 0) report_.negative_seen = true;
    report_.max_remainder =
        std::max(report_.max_remainder, std::abs(remainder));

    // s-self-preference: the step admits any s with
    // min{s, e(u)} <= ceil_self_loops; when ceil_self_loops >= e(u) every
    // s works, otherwise the largest admissible s is ceil_self_loops.
    if (excess > 0 && ceil_self_loops < excess) {
      report_.observed_s = std::min(report_.observed_s, ceil_self_loops);
    }

    // Cumulative imbalance over the original edges (Definition 2.1 (ii)).
    Load* cum_row = cum_.data() + static_cast<std::size_t>(u) * d_;
    for (int p = 0; p < d_; ++p) cum_row[p] += row[p];
    const auto [lo, hi] = std::minmax_element(cum_row, cum_row + d_);
    report_.observed_delta = std::max(report_.observed_delta, *hi - *lo);
  }
  ++report_.steps;
}

}  // namespace dlb
