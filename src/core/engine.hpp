// Synchronous discrete diffusion engine.
//
// Each step the balancer decides the whole round through decide_all()
// (one virtual call; the default implementation falls back to one
// Balancer::decide per node). Flow handling is *lazy*: the n×(d+d°) flow
// matrix is only allocated and filled when a StepObserver is attached (or
// the balancer requests materialization via wants_flow_matrix()) — an
// observer-free run never touches a flow buffer and hot balancers scatter
// tokens straight into the next-load accumulator. Token conservation is
// audited every EngineConfig::conservation_interval steps (the paper's
// model conserves total load exactly).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/balancer.hpp"
#include "core/load_vector.hpp"
#include "core/round_engine.hpp"
#include "graph/graph.hpp"

namespace dlb {

/// Receives the complete flow matrix after every engine step.
///
/// `flows` is laid out as [u * (d + d°) + port]; ports [0, d) are original
/// edges, [d, d + d°) self-loops. `pre` and `post` are the load vectors
/// before and after the step; `t` is the 1-based index of the completed
/// step (after the first step, t == 1). Attaching an observer forces the
/// engine onto the materializing per-node path.
class StepObserver {
 public:
  virtual ~StepObserver() = default;
  virtual void on_step(Step t, const Graph& g, int d_loops,
                       std::span<const Load> pre, std::span<const Load> flows,
                       std::span<const Load> post) = 0;
};

struct EngineConfig {
  int self_loops = 0;             ///< d°, the number of self-loops per node
  bool check_conservation = true; ///< verify Σx invariant (gated below)
  int conservation_interval = 1;  ///< audit every k-th step (1 = every step)
};

/// Drives one balancer over one graph; owns loads and flow buffers.
class Engine : public RoundEngineBase {
 public:
  /// `initial` must have g.num_nodes() entries. The balancer is reset.
  Engine(const Graph& g, EngineConfig config, Balancer& balancer,
         LoadVector initial);

  /// Registers an observer (not owned); call before stepping. The first
  /// observer switches the engine onto the materializing flow path.
  void add_observer(StepObserver& observer);

  const Graph& graph() const noexcept { return *g_; }
  int self_loops() const noexcept { return config_.self_loops; }
  int balancing_degree() const noexcept {
    return g_->degree() + config_.self_loops;
  }

  /// True once the flow matrix has been allocated (i.e. some step ran on
  /// the materializing path). Observer-free runs keep this false — the
  /// lazy path never touches a flow buffer.
  bool flows_materialized() const noexcept { return !flows_.empty(); }

 protected:
  void do_step() override;

 private:
  const Graph* g_;
  EngineConfig config_;
  Balancer* balancer_;
  LoadVector next_;
  LoadVector flows_;  // n * (d + d°); allocated on first materialized step
  std::vector<StepObserver*> observers_;
};

}  // namespace dlb
