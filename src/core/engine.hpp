// Synchronous discrete diffusion engine.
//
// Each step: every node asks its Balancer for a send decision over its
// d + d° ports, the engine moves tokens along original edges, returns
// self-loop tokens and the remainder to the node, and notifies observers
// with the full flow matrix of the step. Token conservation is checked
// every step (the paper's model conserves total load exactly).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/balancer.hpp"
#include "core/load_vector.hpp"
#include "graph/graph.hpp"

namespace dlb {

/// Receives the complete flow matrix after every engine step.
///
/// `flows` is laid out as [u * (d + d°) + port]; ports [0, d) are original
/// edges, [d, d + d°) self-loops. `pre` and `post` are the load vectors
/// before and after the step; `t` is the 1-based index of the completed
/// step (after the first step, t == 1).
class StepObserver {
 public:
  virtual ~StepObserver() = default;
  virtual void on_step(Step t, const Graph& g, int d_loops,
                       std::span<const Load> pre, std::span<const Load> flows,
                       std::span<const Load> post) = 0;
};

struct EngineConfig {
  int self_loops = 0;             ///< d°, the number of self-loops per node
  bool check_conservation = true; ///< verify Σx invariant every step
};

/// Drives one balancer over one graph; owns loads and flow buffers.
class Engine {
 public:
  /// `initial` must have g.num_nodes() entries. The balancer is reset.
  Engine(const Graph& g, EngineConfig config, Balancer& balancer,
         LoadVector initial);

  /// Registers an observer (not owned); call before stepping.
  void add_observer(StepObserver& observer);

  /// Executes one synchronous round.
  void step();

  /// Executes `steps` rounds.
  void run(Step steps);

  /// Runs until discrepancy() <= target or max_steps elapse; returns the
  /// number of *additional* steps taken.
  Step run_until_discrepancy(Load target, Step max_steps);

  const Graph& graph() const noexcept { return *g_; }
  int self_loops() const noexcept { return config_.self_loops; }
  int balancing_degree() const noexcept {
    return g_->degree() + config_.self_loops;
  }

  const LoadVector& loads() const noexcept { return loads_; }
  Step time() const noexcept { return t_; }
  Load total() const noexcept { return total_; }
  Load discrepancy() const { return ::dlb::discrepancy(loads_); }
  double average() const { return average_load(loads_); }

  /// Minimum load ever observed on any node (negative iff the balancer
  /// drove some node negative, cf. the NL column of Table 1).
  Load min_load_seen() const noexcept { return min_load_seen_; }

 private:
  const Graph* g_;
  EngineConfig config_;
  Balancer* balancer_;
  LoadVector loads_;
  LoadVector next_;
  LoadVector flows_;  // scratch: n * (d + d°) per step
  std::vector<StepObserver*> observers_;
  Step t_ = 0;
  Load total_ = 0;
  Load min_load_seen_ = 0;
};

}  // namespace dlb
