// Synchronous discrete diffusion engine with a two-phase decide/apply
// round pipeline.
//
// Serial observer-free steps take the *scatter* path: one decide_all call
// pushes token movements straight into the epoch-stamped next-load
// accumulator — no per-node record, no per-step zero-fill. Rounds that
// need per-node records (an attached StepObserver, a balancer with
// wants_flow_matrix(), or intra-round parallelism via a ThreadPool) take
// the *row* path instead: phase 1 fills each node's per-port record
// (decide), phase 2 pulls every node's incoming flow through rev_port and
// commits its next load (apply). Neither phase has shared writes, so a
// parallel round is byte-identical to a serial one at any thread count.
// Token conservation is audited every EngineConfig::conservation_interval
// steps (the paper's model conserves total load exactly).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/balancer.hpp"
#include "core/epoch_accumulator.hpp"
#include "core/load_vector.hpp"
#include "core/round_engine.hpp"
#include "graph/graph.hpp"

namespace dlb {

/// Receives the complete flow matrix after every engine step.
///
/// `flows` is laid out as [u * (d + d°) + port]; ports [0, d) are original
/// edges, [d, d + d°) self-loops. `pre` and `post` are the load vectors
/// before and after the step; `t` is the 1-based index of the completed
/// step (after the first step, t == 1). Attaching an observer forces the
/// engine onto the row (per-node record) path.
class StepObserver {
 public:
  virtual ~StepObserver() = default;
  virtual void on_step(Step t, const Graph& g, int d_loops,
                       std::span<const Load> pre, std::span<const Load> flows,
                       std::span<const Load> post) = 0;
};

struct EngineConfig {
  int self_loops = 0;             ///< d°, the number of self-loops per node
  bool check_conservation = true; ///< verify Σx invariant (gated below)
  int conservation_interval = 1;  ///< audit every k-th step (1 = every step)
  /// Scatter-path variant (the ROADMAP epoch-RMW revisit): replace the
  /// epoch-stamped accumulator adds with a kept-load assign sweep plus
  /// plain adds. Only takes effect for balancers that opt in via
  /// Balancer::assign_first_scatter_safe(); trajectories are identical
  /// either way (golden-tested). See BENCH_hotpath.json for the measured
  /// trade on the 2^20-node cycle.
  bool assign_first_scatter = false;
};

/// Drives one balancer over one graph; owns loads and flow buffers.
class Engine : public RoundEngineBase {
 public:
  /// `initial` must have g.num_nodes() entries. The balancer is reset.
  Engine(const Graph& g, EngineConfig config, Balancer& balancer,
         LoadVector initial);

  /// Registers an observer (not owned); call before stepping. The first
  /// observer switches the engine onto the row path.
  void add_observer(StepObserver& observer);

  const Graph& graph() const noexcept { return *g_; }
  int self_loops() const noexcept { return config_.self_loops; }
  int balancing_degree() const noexcept {
    return g_->degree() + config_.self_loops;
  }
  const EngineConfig& config() const noexcept { return config_; }
  Balancer& balancer() noexcept { return *balancer_; }
  const Balancer& balancer() const noexcept { return *balancer_; }

  /// Toggles the assign-first scatter variant mid-run. Safe at any round
  /// boundary: both scatter variants leave the accumulator fully stamped
  /// or fully assigned, and each round's begin_round/begin_round_plain
  /// re-establishes its own invariant from either predecessor state.
  /// (Exercised by the epoch-wrap regression test; snapshot/restore keys
  /// on trajectories being identical either way.)
  void set_assign_first_scatter(bool on) noexcept {
    config_.assign_first_scatter = on;
  }

  /// True once the per-node record matrix has been allocated (i.e. some
  /// step ran on the row path — an observer, wants_flow_matrix(), or a
  /// parallel round). Serial observer-free runs keep this false — the
  /// scatter path never touches a row buffer.
  bool flows_materialized() const noexcept { return !flows_.empty(); }

 protected:
  void do_step() override;
  void do_step_parallel(ThreadPool& pool) override;

 private:
  /// Ensures the n×d⁺ record matrix exists (contents need no zeroing:
  /// kernels overwrite every entry of the rows they decide).
  void ensure_rows();
  /// Apply phase over nodes [first, last): next(v) = kept(v) + incoming
  /// flow pulled from the neighbours' records through the topology's
  /// rev_port — computed arithmetic on structured graphs (the constant
  /// p^1 / p, no rev_ table traffic), table loads on generic ones. The
  /// range's min/max next loads ride the same sweep (fused stats).
  template <class Topo>
  void apply_rows(const Topo& topo, NodeId first, NodeId last, Load* next,
                  Load& range_min, Load& range_max) const;
  /// One row-path round; `pool` may be null (serial decide + apply).
  void step_rows(ThreadPool* pool);

  const Graph* g_;
  EngineConfig config_;
  Balancer* balancer_;
  LoadVector next_;        // row-path apply target
  LoadVector flows_;       // n * (d + d°) records; allocated on first row step
  EpochAccumulator acc_;   // scatter-path accumulator
  std::vector<StepObserver*> observers_;
};

}  // namespace dlb
