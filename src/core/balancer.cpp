#include "core/balancer.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "util/assertions.hpp"

namespace dlb {

void Balancer::prepare_round(std::span<const Load> /*loads*/, Step /*t*/,
                             FlowSink& /*sink*/) {}

NodeId Balancer::window_reach(const Graph& /*g*/) const { return -1; }

void Balancer::decide_window(std::span<const Load> /*window*/,
                             NodeId /*global_begin*/, NodeId /*owned*/,
                             NodeId /*reach*/, Step /*t*/, FlowSink& /*sink*/) {
  DLB_REQUIRE(false,
              "decide_window called on a balancer without a windowed "
              "kernel (window_reach < 0)");
}

// Stateless default: nothing beyond what reset() reconstructs. Stateful
// balancers override both; overriding only one trips the snapshot
// layer's exact-consumption check.
void Balancer::save_state(StateWriter& /*w*/) const {}
void Balancer::load_state(StateReader& /*r*/) {}

void Balancer::decide_range(NodeId first, NodeId last,
                            std::span<const Load> loads, Step t,
                            FlowSink& sink) {
  const Graph& g = sink.graph();
  const int d = g.degree();
  const int d_plus = sink.ports();
  const bool negatives_ok = allows_negative();
  const bool rows = sink.row_mode();

  // Scatter mode reuses one scratch row and a hoisted accumulator view
  // (kept out of the loop so its pointers stay in registers); row mode
  // writes straight into the per-node records.
  std::vector<Load> scratch;
  std::optional<EpochAccumulator::Scatter> next;
  if (!rows) {
    scratch.assign(static_cast<std::size_t>(d_plus), 0);
    next.emplace(sink.scatter());
  }

  for (NodeId u = first; u < last; ++u) {
    std::span<Load> row = rows ? sink.row(u) : std::span<Load>(scratch);
    std::fill(row.begin(), row.end(), 0);

    const Load x = loads[static_cast<std::size_t>(u)];
    decide(u, x, t, row);

    Load sent = 0;
    for (int p = 0; p < d_plus; ++p) {
      DLB_ASSERT(negatives_ok || row[static_cast<std::size_t>(p)] >= 0,
                 "balancer produced a negative flow");
      sent += row[static_cast<std::size_t>(p)];
    }
    const Load remainder = x - sent;
    DLB_REQUIRE(negatives_ok || remainder >= 0,
                "balancer sent more tokens than available");
    if (rows) continue;  // the engine's apply phase pulls from the rows

    Load kept = remainder;
    for (int p = d; p < d_plus; ++p) kept += row[static_cast<std::size_t>(p)];
    next->add(static_cast<std::size_t>(u), kept);
    for (int p = 0; p < d; ++p) {
      next->add(static_cast<std::size_t>(g.neighbor(u, p)),
                row[static_cast<std::size_t>(p)]);
    }
  }
}

void Balancer::decide_all(std::span<const Load> loads, Step t,
                          FlowSink& sink) {
  prepare_round(loads, t, sink);
  decide_range(0, sink.graph().num_nodes(), loads, t, sink);
}

}  // namespace dlb
