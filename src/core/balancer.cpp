#include "core/balancer.hpp"

#include <algorithm>
#include <vector>

#include "util/assertions.hpp"

namespace dlb {

void Balancer::decide_all(std::span<const Load> loads, Step t,
                          FlowSink& sink) {
  const Graph& g = sink.graph();
  const NodeId n = g.num_nodes();
  const int d = g.degree();
  const int d_plus = sink.ports();
  const bool negatives_ok = allows_negative();
  Load* next = sink.next();

  // Lazy mode reuses one scratch row; materialized mode writes straight
  // into the pre-zeroed flow matrix.
  std::vector<Load> scratch;
  if (!sink.materialized()) {
    scratch.assign(static_cast<std::size_t>(d_plus), 0);
  }

  for (NodeId u = 0; u < n; ++u) {
    std::span<Load> row =
        sink.materialized() ? sink.row(u) : std::span<Load>(scratch);
    if (!sink.materialized()) std::fill(row.begin(), row.end(), 0);

    const Load x = loads[static_cast<std::size_t>(u)];
    decide(u, x, t, row);

    Load sent = 0;
    for (int p = 0; p < d_plus; ++p) {
      DLB_ASSERT(negatives_ok || row[static_cast<std::size_t>(p)] >= 0,
                 "balancer produced a negative flow");
      sent += row[static_cast<std::size_t>(p)];
    }
    const Load remainder = x - sent;
    DLB_REQUIRE(negatives_ok || remainder >= 0,
                "balancer sent more tokens than available");

    Load kept = remainder;
    for (int p = d; p < d_plus; ++p) kept += row[static_cast<std::size_t>(p)];
    next[static_cast<std::size_t>(u)] += kept;
    for (int p = 0; p < d; ++p) {
      next[static_cast<std::size_t>(g.neighbor(u, p))] +=
          row[static_cast<std::size_t>(p)];
    }
  }
}

}  // namespace dlb
