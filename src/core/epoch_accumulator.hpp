// Epoch-stamped next-load accumulator: an O(1) logical zero-fill.
//
// The lazy scatter path adds token movements into an n-sized next-load
// array every step; zero-filling that array each round is an O(n) memset
// that pure kernel work never amortizes away. Instead, every slot carries
// a one-byte epoch stamp: begin_round() bumps the current epoch (making
// every slot logically zero without touching it), add() overwrites a
// stale slot and accumulates into a fresh one — branch-free, so the
// scatter loop stays tight and graph-order-agnostic — and finalize()
// zeroes the slots no kernel touched, which is how stale values from
// earlier rounds are guaranteed never to leak into the new load vector
// (unit-tested in test_engine.cpp). The stamps wrap every 255 rounds;
// begin_round() then re-zeroes them once, which amortizes to nothing.
// An alternative *assign-first* round protocol (the ROADMAP epoch-RMW
// revisit) lives alongside the epoch one: begin_round_plain() +
// Plain::assign/add + plain_minmax(). There the kernel guarantees the
// first touch of every slot in the round is an assign (kept-load pass),
// so neither stamps nor zero-fill are needed and later edge flows are
// plain adds. Only kernels that opt in (Balancer::
// assign_first_scatter_safe) may be driven this way — an interleaved
// kernel would read stale values.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

#include "core/load_vector.hpp"

namespace dlb {

class EpochAccumulator {
 public:
  /// Register-resident scatter view: raw pointers the hot loops keep in
  /// registers (an add() through the accumulator object would reload the
  /// vector data pointers after every byte store, since char stores may
  /// alias anything). Copy one per kernel invocation.
  class Scatter {
   public:
    explicit Scatter(EpochAccumulator& acc) noexcept
        : values_(acc.values_.data()), epoch_(acc.epoch_.data()),
          current_(acc.current_) {}

    /// next[i] += f against the current round's logical zeros.
    /// Branch-free: a stale slot is overwritten, a fresh one accumulated.
    void add(std::size_t i, Load f) const noexcept {
      const bool stale = epoch_[i] != current_;
      epoch_[i] = current_;
      values_[i] = (stale ? 0 : values_[i]) + f;
    }

    /// Raw storage access for vectorized *single-touch* kernels. A kernel
    /// that emits each slot's final value exactly once per round may write
    /// raw_values()[i] = f and raw_epoch()[i] = epoch_stamp() directly —
    /// byte-identical to add() on a slot untouched this round (stale is
    /// always true on first touch, so add() is exactly that overwrite).
    /// Multi-touch kernels must keep using add().
    Load* raw_values() const noexcept { return values_; }
    std::uint8_t* raw_epoch() const noexcept { return epoch_; }
    std::uint8_t epoch_stamp() const noexcept { return current_; }

   private:
    Load* values_;
    std::uint8_t* epoch_;
    std::uint8_t current_;
  };

  /// Register-resident view for assign-first rounds: no stamps, no
  /// logical zero-fill. The kernel must assign() every slot of the round
  /// before any add() lands on it (the kept-load pass), or stale values
  /// from earlier rounds leak.
  class Plain {
   public:
    explicit Plain(EpochAccumulator& acc) noexcept
        : values_(acc.values_.data()) {}

    /// First touch of slot i this round: next[i] = v.
    void assign(std::size_t i, Load v) const noexcept { values_[i] = v; }

    /// Subsequent touches: next[i] += f.
    void add(std::size_t i, Load f) const noexcept { values_[i] += f; }

    /// Raw storage for vectorized single-touch kernels (see
    /// Scatter::raw_values): a block store is byte-identical to per-slot
    /// assign() when each slot is written exactly once.
    Load* raw_values() const noexcept { return values_; }

   private:
    Load* values_;
  };

  /// Sizes the accumulator to n slots, all zero and all fresh.
  void reset(std::size_t n) {
    values_.assign(n, 0);
    epoch_.assign(n, 0);
    current_ = 0;
  }

  std::size_t size() const noexcept { return values_.size(); }

  /// Starts a new round: every slot becomes logically zero in O(1)
  /// (amortized — one stamp re-zero per 255 rounds).
  void begin_round() noexcept {
    if (++current_ == 0) {
      // Stamp wrap: old stamps would alias the new epoch; re-zero them.
      std::fill(epoch_.begin(), epoch_.end(), std::uint8_t{0});
      current_ = 1;
    }
  }

  /// next[i] += f against the current round's logical zeros. Convenience
  /// for cold paths; hot kernels use a Scatter view instead.
  void add(std::size_t i, Load f) noexcept { Scatter(*this).add(i, f); }

  /// This round's value of slot i (0 if untouched). For tests/audits.
  Load value(std::size_t i) const noexcept {
    return epoch_[i] == current_ ? values_[i] : 0;
  }

  /// Materializes the round: zeroes every untouched slot so values() is
  /// the complete next-load vector. Block-reduced stamp scan (no
  /// per-element branch, vectorizes): well-formed kernels touch every
  /// node, so the per-slot fixup almost never runs.
  void finalize() noexcept {
    const std::uint8_t cur = current_;
    const std::size_t n = epoch_.size();
    constexpr std::size_t kBlock = 64;
    std::size_t i = 0;
    for (; i + kBlock <= n; i += kBlock) {
      std::uint8_t diff = 0;
      for (std::size_t j = 0; j < kBlock; ++j) {
        diff |= static_cast<std::uint8_t>(epoch_[i + j] ^ cur);
      }
      if (diff != 0) {
        for (std::size_t j = i; j < i + kBlock; ++j) fix_slot(j, cur);
      }
    }
    for (; i < n; ++i) fix_slot(i, cur);
  }

  /// finalize() fused with the round's min/max statistics: the stale-slot
  /// fixup and the min/max reduction share one sweep over values_, so the
  /// engine's separate post-step stats pass over the (identical) new load
  /// vector disappears — one fewer full-vector pass per round.
  void finalize_stats(Load& min_out, Load& max_out) noexcept {
    const std::uint8_t cur = current_;
    const std::size_t n = epoch_.size();
    Load lo = std::numeric_limits<Load>::max();
    Load hi = std::numeric_limits<Load>::min();
    constexpr std::size_t kBlock = 64;
    std::size_t i = 0;
    for (; i + kBlock <= n; i += kBlock) {
      std::uint8_t diff = 0;
      for (std::size_t j = 0; j < kBlock; ++j) {
        diff |= static_cast<std::uint8_t>(epoch_[i + j] ^ cur);
      }
      if (diff != 0) {
        for (std::size_t j = i; j < i + kBlock; ++j) fix_slot(j, cur);
      }
      for (std::size_t j = i; j < i + kBlock; ++j) {
        lo = std::min(lo, values_[j]);
        hi = std::max(hi, values_[j]);
      }
    }
    for (; i < n; ++i) {
      fix_slot(i, cur);
      lo = std::min(lo, values_[i]);
      hi = std::max(hi, values_[i]);
    }
    min_out = lo;
    max_out = hi;
  }

  /// Starts an assign-first round: nothing to do — the kernel's kept-load
  /// assign pass is the logical zero-fill. Kept for call-site symmetry
  /// with begin_round().
  void begin_round_plain() noexcept {}

  /// Assign/add view for assign-first rounds.
  Plain plain() noexcept { return Plain(*this); }

  /// Round statistics for assign-first rounds (which have no stale slots
  /// to fix — every slot was assigned): one min/max sweep over values_.
  void plain_minmax(Load& min_out, Load& max_out) const noexcept {
    Load lo = std::numeric_limits<Load>::max();
    Load hi = std::numeric_limits<Load>::min();
    for (Load v : values_) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    min_out = lo;
    max_out = hi;
  }

  /// The backing vector; valid as the round's next loads only after
  /// finalize(). Exposed so the engine can swap it with the load vector.
  LoadVector& values() noexcept { return values_; }

 private:
  void fix_slot(std::size_t i, std::uint8_t cur) noexcept {
    if (epoch_[i] != cur) {
      values_[i] = 0;
      epoch_[i] = cur;
    }
  }

  LoadVector values_;
  std::vector<std::uint8_t, AlignedAllocator<std::uint8_t>> epoch_;
  std::uint8_t current_ = 0;
};

}  // namespace dlb
