#include "core/flow_tracker.hpp"

#include <algorithm>

#include "util/assertions.hpp"

namespace dlb {

void FlowTracker::on_step(Step /*t*/, const Graph& g, int d_loops,
                          std::span<const Load> /*pre*/,
                          std::span<const Load> flows,
                          std::span<const Load> /*post*/) {
  if (!initialized_) {
    n_ = g.num_nodes();
    d_ = g.degree();
    d_loops_ = d_loops;
    cum_.assign(flows.size(), 0);
    initialized_ = true;
  }
  DLB_REQUIRE(flows.size() == cum_.size(), "FlowTracker: layout changed");
  for (std::size_t i = 0; i < flows.size(); ++i) cum_[i] += flows[i];
  ++steps_;
}

Load FlowTracker::cumulative(NodeId u, int port) const {
  DLB_REQUIRE(initialized_, "FlowTracker has observed no steps");
  DLB_REQUIRE(u >= 0 && u < n_ && port >= 0 && port < d_,
              "cumulative: bad args");
  return cum_[static_cast<std::size_t>(u) * (d_ + d_loops_) +
              static_cast<std::size_t>(port)];
}

Load FlowTracker::cumulative_self_loop(NodeId u, int loop) const {
  DLB_REQUIRE(initialized_, "FlowTracker has observed no steps");
  DLB_REQUIRE(u >= 0 && u < n_ && loop >= 0 && loop < d_loops_,
              "cumulative_self_loop: bad args");
  return cum_[static_cast<std::size_t>(u) * (d_ + d_loops_) +
              static_cast<std::size_t>(d_ + loop)];
}

Load FlowTracker::cumulative_out(NodeId u) const {
  DLB_REQUIRE(initialized_, "FlowTracker has observed no steps");
  DLB_REQUIRE(u >= 0 && u < n_, "cumulative_out: bad node");
  const std::size_t width = static_cast<std::size_t>(d_ + d_loops_);
  const Load* row = cum_.data() + static_cast<std::size_t>(u) * width;
  Load sum = 0;
  for (std::size_t p = 0; p < width; ++p) sum += row[p];
  return sum;
}

Load FlowTracker::edge_imbalance(NodeId u) const {
  DLB_REQUIRE(initialized_, "FlowTracker has observed no steps");
  DLB_REQUIRE(u >= 0 && u < n_, "edge_imbalance: bad node");
  const std::size_t width = static_cast<std::size_t>(d_ + d_loops_);
  const Load* row = cum_.data() + static_cast<std::size_t>(u) * width;
  const auto [lo, hi] = std::minmax_element(row, row + d_);
  return *hi - *lo;
}

Load FlowTracker::max_edge_imbalance() const {
  Load worst = 0;
  for (NodeId u = 0; u < n_; ++u) {
    worst = std::max(worst, edge_imbalance(u));
  }
  return worst;
}

}  // namespace dlb
