// Load-vector helpers: the paper's basic observables.
//
// x_t ∈ Z^n is the token count per node. The two quantities every theorem
// speaks about are the *discrepancy* max x − min x and the *balancedness*
// max x − x̄ (gap to the average load).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "util/alloc.hpp"
#include "util/assertions.hpp"

namespace dlb {

using Load = std::int64_t;
using Step = std::int64_t;

/// The hot per-node arrays (loads, accumulator values) live in
/// cache-line-aligned, huge-page-backed storage (util/alloc.hpp): SIMD
/// kernels get aligned streams and production-sized vectors (8 MiB at
/// 2^20 nodes) stop thrashing the TLB. Still a std::vector — only the
/// allocator differs — so spans, iterators, and swap work unchanged.
using LoadVector = std::vector<Load, AlignedAllocator<Load>>;

inline Load total_load(std::span<const Load> x) {
  Load sum = 0;
  for (Load v : x) sum += v;
  return sum;
}

inline Load max_load(std::span<const Load> x) {
  DLB_REQUIRE(!x.empty(), "max_load of empty vector");
  return *std::max_element(x.begin(), x.end());
}

inline Load min_load(std::span<const Load> x) {
  DLB_REQUIRE(!x.empty(), "min_load of empty vector");
  return *std::min_element(x.begin(), x.end());
}

/// Discrepancy: max_u x(u) − min_u x(u).
inline Load discrepancy(std::span<const Load> x) {
  DLB_REQUIRE(!x.empty(), "discrepancy of empty vector");
  const auto [lo, hi] = std::minmax_element(x.begin(), x.end());
  return *hi - *lo;
}

/// Average load x̄ as a real number (total load is conserved, so this is
/// constant over a run).
inline double average_load(std::span<const Load> x) {
  DLB_REQUIRE(!x.empty(), "average_load of empty vector");
  return static_cast<double>(total_load(x)) / static_cast<double>(x.size());
}

/// Balancedness: max_u x(u) − x̄ (the paper's "gap to the average").
inline double balancedness(std::span<const Load> x) {
  return static_cast<double>(max_load(x)) - average_load(x);
}

}  // namespace dlb
