#include "core/round_engine.hpp"

#include <algorithm>
#include <utility>

#include "util/assertions.hpp"
#include "util/thread_pool.hpp"

namespace dlb {

void RoundEngineBase::adopt_loads(LoadVector initial,
                                  ConservationPolicy audit) {
  DLB_REQUIRE(!initial.empty(), "round engine: empty load vector");
  DLB_REQUIRE(audit.interval >= 1, "round engine: audit interval must be >= 1");
  loads_ = std::move(initial);
  audit_ = audit;
  total_ = total_load(loads_);
  const auto [lo, hi] = std::minmax_element(loads_.begin(), loads_.end());
  min_load_ = *lo;
  max_load_ = *hi;
  min_load_seen_ = min_load_;
  stats_dirty_ = false;
}

void RoundEngineBase::refresh_stats(bool audit_total) const {
  Load lo = loads_[0];
  Load hi = loads_[0];
  if (audit_total) {
    Load sum = 0;
    for (Load v : loads_) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
    }
    DLB_REQUIRE(sum == total_, "token conservation violated by engine step");
  } else {
    for (Load v : loads_) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  min_load_ = lo;
  max_load_ = hi;
  min_load_seen_ = std::min(min_load_seen_, lo);
  stats_dirty_ = false;
}

void RoundEngineBase::do_step_parallel(ThreadPool& /*pool*/) { do_step(); }

void RoundEngineBase::after_step() {
  ++t_;
  const bool audit =
      audit_.enabled && (audit_.interval == 1 || t_ % audit_.interval == 0);
  if (audit) {
    refresh_stats(true);
  } else if (deferred_stats_) {
    stats_dirty_ = true;
  } else {
    refresh_stats(false);
  }
}

void RoundEngineBase::step() {
  do_step();
  after_step();
}

void RoundEngineBase::step_parallel() {
  if (pool_ != nullptr && pool_->parallelism() > 1) {
    do_step_parallel(*pool_);
  } else {
    do_step();
  }
  after_step();
}

void RoundEngineBase::run(Step steps) {
  DLB_REQUIRE(steps >= 0, "run: negative step count");
  for (Step i = 0; i < steps; ++i) step_parallel();
}

Step RoundEngineBase::run_until_discrepancy(Load target, Step max_steps) {
  DLB_REQUIRE(max_steps >= 0, "run_until_discrepancy: negative cap");
  for (Step i = 0; i < max_steps; ++i) {
    if (discrepancy() <= target) return i;
    step_parallel();
  }
  return max_steps;
}

}  // namespace dlb
