#include "core/round_engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

#include "dynamics/workload.hpp"
#include "obs/engine_telemetry.hpp"
#include "obs/trace.hpp"
#include "util/assertions.hpp"
#include "util/thread_pool.hpp"

namespace dlb {

namespace {

std::uint64_t mono_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

RoundEngineBase::RoundEngineBase() = default;
RoundEngineBase::~RoundEngineBase() = default;

std::uint64_t RoundEngineBase::round_begin() const noexcept {
  if (!obs::metrics_armed()) return 0;
  return mono_ns();
}

void RoundEngineBase::round_end(std::uint64_t start_ns) {
  if (start_ns == 0) return;
  if (!telemetry_) {
    telemetry_ = std::make_unique<obs::EngineTelemetry>(engine_kind());
  }
  obs::EngineTelemetry& tel = *telemetry_;
  tel.rounds.inc();
  tel.round_seconds.observe(static_cast<double>(mono_ns() - start_ns) * 1e-9);
  tel.time.set(t_);
  tel.injected.set(injected_total_);
  tel.consumed.set(consumed_total_);
  // Cached stats only. Forcing a refresh here would change
  // min_load_seen_'s history in deferred-stats mode — telemetry must
  // observe, never steer.
  if (!stats_dirty_) {
    tel.min_load.set(min_load_);
    tel.max_load.set(max_load_);
    tel.discrepancy.set(max_load_ - min_load_);
  }
}

void RoundEngineBase::adopt_loads(LoadVector initial,
                                  ConservationPolicy audit) {
  DLB_REQUIRE(!initial.empty(), "round engine: empty load vector");
  DLB_REQUIRE(audit.interval >= 1, "round engine: audit interval must be >= 1");
  loads_ = std::move(initial);
  audit_ = audit;
  total_ = total_load(loads_);
  base_total_ = total_;
  injected_total_ = 0;
  consumed_total_ = 0;
  const auto [lo, hi] = std::minmax_element(loads_.begin(), loads_.end());
  min_load_ = *lo;
  max_load_ = *hi;
  min_load_seen_ = min_load_;
  stats_dirty_ = false;
}

void RoundEngineBase::refresh_stats(bool audit_total) const {
  Load lo = loads_[0];
  Load hi = loads_[0];
  if (audit_total) {
    Load sum = 0;
    for (Load v : loads_) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
    }
    DLB_REQUIRE(sum == total_, "token conservation violated by engine step");
  } else {
    for (Load v : loads_) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  min_load_ = lo;
  max_load_ = hi;
  min_load_seen_ = std::min(min_load_seen_, lo);
  stats_dirty_ = false;
}

void RoundEngineBase::do_step_parallel(ThreadPool& /*pool*/) { do_step(); }

void RoundEngineBase::save_core_state(StateWriter& w) const {
  w.vec_i64(loads_);
  w.i64(t_);
  w.i64(total_);
  w.i64(base_total_);
  w.i64(injected_total_);
  w.i64(consumed_total_);
  w.i64(min_load_);
  w.i64(max_load_);
  w.i64(min_load_seen_);
  w.b(stats_dirty_);
}

void RoundEngineBase::load_core_state(StateReader& r) {
  const std::vector<std::int64_t> loads = r.vec_i64();
  if (loads.size() != loads_.size()) {
    throw serial_error("engine core state: load vector size mismatch");
  }
  loads_.assign(loads.begin(), loads.end());
  t_ = r.i64();
  total_ = r.i64();
  base_total_ = r.i64();
  injected_total_ = r.i64();
  consumed_total_ = r.i64();
  min_load_ = r.i64();
  max_load_ = r.i64();
  min_load_seen_ = r.i64();
  stats_dirty_ = r.b();
  round_stats_valid_ = false;
}

void RoundEngineBase::apply_workload(ThreadPool* pool) {
  if (workload_ == nullptr) return;
  workload_->prepare(t_, loads_);
  // Sparse fast path: a process that knows its round's touched-node set
  // (burst hotspot, adversary targets) hands it over and the engine
  // applies exactly those deltas — no n virtual delta() calls per round.
  if (const std::vector<NodeId>* sparse = workload_->affected_nodes()) {
    Load inj = 0;
    Load con = 0;
    // Always-on bounds check: the list crosses a trust boundary (any
    // third-party process can return one) and is tiny by design, so the
    // guard is free — unlike the dense path, a bad entry here would
    // otherwise corrupt the heap in release builds.
    for (const NodeId u : *sparse) {
      DLB_REQUIRE(u >= 0 && static_cast<std::size_t>(u) < loads_.size(),
                  "workload affected node out of range");
      const Load d = workload_->delta(u, t_);
      Load& x = loads_[static_cast<std::size_t>(u)];
      if (d > 0) {
        x += d;
        inj += d;
      } else if (d < 0) {
        const Load take = std::min(-d, std::max<Load>(x, 0));
        x -= take;
        con += take;
      }
    }
    injected_total_ += inj;
    consumed_total_ += con;
    total_ += inj - con;
    return;
  }
  const auto n = static_cast<std::int64_t>(loads_.size());
  // Per-chunk partials, combined with commutative integer adds: the
  // totals are identical for any chunking, so thread count never shows.
  std::atomic<Load> injected{0};
  std::atomic<Load> consumed{0};
  const auto body = [&](std::int64_t first, std::int64_t last) {
    Load inj = 0;
    Load con = 0;
    for (std::int64_t i = first; i < last; ++i) {
      const Load d = workload_->delta(static_cast<NodeId>(i), t_);
      Load& x = loads_[static_cast<std::size_t>(i)];
      if (d > 0) {
        x += d;
        inj += d;
      } else if (d < 0) {
        const Load take = std::min(-d, std::max<Load>(x, 0));
        x -= take;
        con += take;
      }
    }
    injected.fetch_add(inj, std::memory_order_relaxed);
    consumed.fetch_add(con, std::memory_order_relaxed);
  };
  if (pool != nullptr && pool->parallelism() > 1 &&
      workload_->parallel_generate_safe()) {
    pool->for_ranges(n, body);
  } else {
    body(0, n);
  }
  const Load inj = injected.load(std::memory_order_relaxed);
  const Load con = consumed.load(std::memory_order_relaxed);
  injected_total_ += inj;
  consumed_total_ += con;
  total_ += inj - con;
}

void RoundEngineBase::after_step() {
  ++t_;
  const bool audit =
      audit_.enabled && (audit_.interval == 1 || t_ % audit_.interval == 0);
  if (audit) {
    // The audit re-sums the loads anyway, and min/max ride that same
    // pass for free — published stats are simply superseded.
    refresh_stats(true);
  } else if (round_stats_valid_) {
    // The round's own sweep already produced min/max (fused apply pull /
    // scatter finalize); commit without another O(n) pass. This also
    // means deferred-stats mode loses nothing on engines that publish:
    // the observables stay exact at zero extra cost.
    min_load_ = round_min_;
    max_load_ = round_max_;
    min_load_seen_ = std::min(min_load_seen_, round_min_);
    stats_dirty_ = false;
  } else if (deferred_stats_) {
    stats_dirty_ = true;
  } else {
    refresh_stats(false);
  }
  round_stats_valid_ = false;
}

void RoundEngineBase::step() {
  const std::uint64_t t0 = round_begin();
  {
    obs::TraceSpan span("round", engine_kind(), "t", t_ + 1);
    apply_workload(nullptr);
    do_step();
    after_step();
  }
  round_end(t0);
}

void RoundEngineBase::step_parallel() {
  const std::uint64_t t0 = round_begin();
  {
    obs::TraceSpan span("round", engine_kind(), "t", t_ + 1);
    if (pool_ != nullptr && pool_->parallelism() > 1) {
      apply_workload(pool_);
      do_step_parallel(*pool_);
    } else {
      apply_workload(nullptr);
      do_step();
    }
    after_step();
  }
  round_end(t0);
}

void RoundEngineBase::run(Step steps) {
  DLB_REQUIRE(steps >= 0, "run: negative step count");
  for (Step i = 0; i < steps; ++i) step_parallel();
}

Step RoundEngineBase::run_until_discrepancy(Load target, Step max_steps) {
  DLB_REQUIRE(max_steps >= 0, "run_until_discrepancy: negative cap");
  for (Step i = 0; i < max_steps; ++i) {
    if (discrepancy() <= target) return i;
    step_parallel();
  }
  return max_steps;
}

}  // namespace dlb
