// Fairness auditors: observe a run and certify class membership.
//
// The paper's results are quantified over *classes* of algorithms:
//   Definition 2.1 (cumulatively δ-fair): every port gets ≥ ⌊x/d⁺⌋ per
//     step, and cumulative flows over any two original edges of a node
//     differ by ≤ δ at all times.
//   Definition 3.1 (good s-balancer): additionally round-fair (every port
//     gets ⌊x/d⁺⌋ or ⌈x/d⁺⌉) and s-self-preferring (at least min{s, e(u)}
//     self-loops get ⌈x/d⁺⌉, where e(u) = x − d⁺⌊x/d⁺⌋).
//
// Rather than trusting balancer implementations, the auditor measures all
// of these properties from the actual flow matrices: tests assert e.g.
// that ROTOR-ROUTER is cumulatively 1-fair *as observed*, and experiments
// report the empirical δ and s of every run.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/engine.hpp"

namespace dlb {

/// Everything the auditor can certify about a finished run.
struct FairnessReport {
  /// Empirical δ: max over steps and nodes of max_{e1,e2∈Eu}|F(e1)−F(e2)|.
  Load observed_delta = 0;

  /// Definition 2.1 condition (i): every port received ≥ ⌊x/d⁺⌋ tokens in
  /// every step.
  bool floor_condition_ok = true;

  /// Round-fairness: every port received ⌊x/d⁺⌋ or ⌈x/d⁺⌉ every step.
  bool round_fair = true;

  /// Empirical s: the largest s for which the run was s-self-preferring
  /// (infinite when e(u) self-loops always got the ceiling; reported as
  /// max int64 in that case). 0 means the property failed entirely.
  std::int64_t observed_s = std::numeric_limits<std::int64_t>::max();

  /// Max |r_t(u)| over the run (the paper requires r ≤ d⁺, Prop. A.2).
  Load max_remainder = 0;

  /// True if some step produced a negative flow or a negative remainder.
  bool negative_seen = false;

  Step steps = 0;
};

/// StepObserver that incrementally builds a FairnessReport.
class FairnessAuditor : public StepObserver {
 public:
  FairnessAuditor() = default;

  void on_step(Step t, const Graph& g, int d_loops,
               std::span<const Load> pre, std::span<const Load> flows,
               std::span<const Load> post) override;

  const FairnessReport& report() const noexcept { return report_; }

 private:
  bool initialized_ = false;
  NodeId n_ = 0;
  int d_ = 0;
  int d_loops_ = 0;
  std::vector<Load> cum_;  // cumulative per original edge: n * d
  FairnessReport report_;
};

}  // namespace dlb
