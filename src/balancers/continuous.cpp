#include "balancers/continuous.hpp"

#include <algorithm>

#include "util/assertions.hpp"

namespace dlb {

ContinuousDiffusion::ContinuousDiffusion(const Graph& g, int self_loops,
                                         std::vector<double> initial)
    : op_(g, self_loops), x_(std::move(initial)) {
  DLB_REQUIRE(x_.size() == static_cast<std::size_t>(g.num_nodes()),
              "ContinuousDiffusion: initial size mismatch");
}

ContinuousDiffusion::ContinuousDiffusion(const Graph& g, int self_loops,
                                         const LoadVector& initial)
    : ContinuousDiffusion(g, self_loops,
                          std::vector<double>(initial.begin(),
                                              initial.end())) {}

void ContinuousDiffusion::step() {
  op_.apply_in_place(x_);
  ++t_;
}

void ContinuousDiffusion::run(Step steps) {
  DLB_REQUIRE(steps >= 0, "run: negative step count");
  for (Step i = 0; i < steps; ++i) step();
}

double ContinuousDiffusion::discrepancy() const {
  const auto [lo, hi] = std::minmax_element(x_.begin(), x_.end());
  return *hi - *lo;
}

double ContinuousDiffusion::total() const {
  double sum = 0.0;
  for (double v : x_) sum += v;
  return sum;
}

}  // namespace dlb
