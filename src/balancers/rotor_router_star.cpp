#include "balancers/rotor_router_star.hpp"

#include "graph/topology.hpp"
#include "util/assertions.hpp"
#include "util/intmath.hpp"
#include "util/rng.hpp"

namespace dlb {

void RotorRouterStar::reset(const Graph& graph, int d_loops) {
  DLB_REQUIRE(d_loops == graph.degree(),
              "ROTOR-ROUTER* requires d° == d (d⁺ = 2d)");
  d_ = graph.degree();
  rotor_ports_ = 2 * d_ - 1;
  DLB_REQUIRE(rotor_ports_ >= 1, "ROTOR-ROUTER* needs d >= 1");
  div_ = NonNegDiv(2 * d_);
  rotor_.assign(static_cast<std::size_t>(graph.num_nodes()), 0);
  if (seed_ != 0) {
    Rng rng(seed_);
    for (auto& r : rotor_) {
      r = static_cast<int>(rng.uniform_u64(
          static_cast<std::uint64_t>(rotor_ports_)));
    }
  }
  // No target table: ROTOR-ROUTER*'s rotor positions *are* ports (the
  // seed only randomizes starting positions, never the port layout), so
  // an extra token's destination is pure arithmetic — neighbor(u, pos)
  // for pos < d, u itself for the self-loop positions. The scatter
  // kernel computes it through the topology cursor; on structured graphs
  // that is register arithmetic with zero table traffic, on generic
  // graphs it reads the same adjacency entry the table would have cached.
}

void RotorRouterStar::decide(NodeId u, Load load, Step /*t*/,
                             std::span<Load> flows) {
  DLB_REQUIRE(load >= 0, "ROTOR-ROUTER* cannot handle negative load");
  const int d_plus = 2 * d_;
  const Load q = floor_div(load, d_plus);
  const Load r = load - q * d_plus;

  // Port layout: [0, d) original edges, [d, 2d−1) ordinary self-loops,
  // 2d−1 the special self-loop.
  const std::size_t special = static_cast<std::size_t>(d_plus - 1);
  flows[special] = q + (r > 0 ? 1 : 0);

  // Rotor-deal the rest over the first 2d−1 ports: q each plus r−1 extras
  // (or 0 extras when r == 0).
  const Load extras = r > 0 ? r - 1 : 0;
  for (int p = 0; p < rotor_ports_; ++p) {
    flows[static_cast<std::size_t>(p)] = q;
  }
  int& rotor = rotor_[static_cast<std::size_t>(u)];
  for (Load k = 0; k < extras; ++k) {
    ++flows[static_cast<std::size_t>((rotor + k) % rotor_ports_)];
  }
  rotor = static_cast<int>((rotor + extras) % rotor_ports_);
}

void RotorRouterStar::decide_range(NodeId first, NodeId last,
                                   std::span<const Load> loads, Step /*t*/,
                                   FlowSink& sink) {
  const Graph& g = sink.graph();
  const int d_plus = 2 * d_;
  if (sink.row_mode()) {
    for (NodeId u = first; u < last; ++u) {
      const Load x = loads[static_cast<std::size_t>(u)];
      DLB_REQUIRE(x >= 0, "ROTOR-ROUTER* cannot handle negative load");
      const Load q = div_.quot(x);
      const int r = static_cast<int>(x - q * d_plus);
      int& rotor = rotor_[static_cast<std::size_t>(u)];
      std::span<Load> row = sink.row(u);
      std::fill(row.begin(), row.end(), q);
      row[static_cast<std::size_t>(d_plus - 1)] += r > 0 ? 1 : 0;  // special
      const int extras = r > 0 ? r - 1 : 0;
      // Rotor positions are ports directly (no permutation here); the
      // conditional subtract keeps the walk wrap- and division-free.
      for (int k = 0; k < rotor_ports_ - 1; ++k) {
        int pos = rotor + k;
        pos -= pos >= rotor_ports_ ? rotor_ports_ : 0;
        row[static_cast<std::size_t>(pos)] += static_cast<Load>(k < extras);
      }
      rotor = rotor + extras < rotor_ports_ ? rotor + extras
                                            : rotor + extras - rotor_ports_;
    }
    return;
  }
  with_topology(g, [&](const auto& topo) {
    scatter_range(topo, first, last, loads, sink);
  });
}

template <class Topo>
void RotorRouterStar::scatter_range(const Topo& topo, NodeId first,
                                    NodeId last, std::span<const Load> loads,
                                    FlowSink& sink) {
  const int d = topo.degree();
  const int d_plus = 2 * d_;
  const auto next = sink.scatter();
  auto cur = topo.cursor(first);
  for (NodeId u = first; u < last; ++u, cur.advance()) {
    const Load x = loads[static_cast<std::size_t>(u)];
    DLB_REQUIRE(x >= 0, "ROTOR-ROUTER* cannot handle negative load");
    const Load q = div_.quot(x);
    const int r = static_cast<int>(x - q * d_plus);
    int& rotor = rotor_[static_cast<std::size_t>(u)];

    // Ports [0, d) are real edges; [d, 2d−1) ordinary self-loops and
    // 2d−1 the special one — all self-loops resolve to "keep local".
    for (int p = 0; p < d; ++p) {
      next.add(static_cast<std::size_t>(cur.neighbor(p)), q);
    }
    // The special self-loop's q + (r > 0) ceiling share stays local, as
    // do the ordinary self-loop base shares; the r−1 rotor extras land on
    // *computed* targets — rotor positions are ports directly, so the
    // destination is neighbor(u, pos) for pos < d and u itself otherwise
    // (pure arithmetic on structured graphs, one adjacency read on
    // generic ones; the old precomputed table is gone).
    const int extras = r > 0 ? r - 1 : 0;
    // Fixed trip count of 2d−2 with a masked increment — a data-dependent
    // `k < extras` bound would mispredict on nearly every node. The
    // conditional subtract keeps the walk wrap- and division-free.
    for (int k = 0; k < rotor_ports_ - 1; ++k) {
      int pos = rotor + k;
      pos -= pos >= rotor_ports_ ? rotor_ports_ : 0;
      const NodeId dest = pos < d ? cur.neighbor(pos) : u;
      next.add(static_cast<std::size_t>(dest),
               static_cast<Load>(k < extras));
    }
    rotor = rotor + extras < rotor_ports_ ? rotor + extras
                                          : rotor + extras - rotor_ports_;
    next.add(static_cast<std::size_t>(u), x - q * d - extras);
  }
}


void RotorRouterStar::save_state(StateWriter& w) const { w.vec_int(rotor_); }

void RotorRouterStar::load_state(StateReader& r) {
  std::vector<int> rotor = r.vec_int();
  DLB_REQUIRE(rotor.size() == rotor_.size(),
              "RotorRouterStar: rotor state size mismatch");
  for (int pos : rotor) {
    DLB_REQUIRE(pos >= 0 && pos < rotor_ports_,
                "RotorRouterStar: rotor position out of range");
  }
  rotor_ = std::move(rotor);
}

}  // namespace dlb
