#include "balancers/rotor_router_star.hpp"

#include "util/assertions.hpp"
#include "util/intmath.hpp"
#include "util/rng.hpp"

namespace dlb {

void RotorRouterStar::reset(const Graph& graph, int d_loops) {
  DLB_REQUIRE(d_loops == graph.degree(),
              "ROTOR-ROUTER* requires d° == d (d⁺ = 2d)");
  d_ = graph.degree();
  rotor_ports_ = 2 * d_ - 1;
  DLB_REQUIRE(rotor_ports_ >= 1, "ROTOR-ROUTER* needs d >= 1");
  rotor_.assign(static_cast<std::size_t>(graph.num_nodes()), 0);
  if (seed_ != 0) {
    Rng rng(seed_);
    for (auto& r : rotor_) {
      r = static_cast<int>(rng.uniform_u64(
          static_cast<std::uint64_t>(rotor_ports_)));
    }
  }
}

void RotorRouterStar::decide(NodeId u, Load load, Step /*t*/,
                             std::span<Load> flows) {
  DLB_REQUIRE(load >= 0, "ROTOR-ROUTER* cannot handle negative load");
  const int d_plus = 2 * d_;
  const Load q = floor_div(load, d_plus);
  const Load r = load - q * d_plus;

  // Port layout: [0, d) original edges, [d, 2d−1) ordinary self-loops,
  // 2d−1 the special self-loop.
  const std::size_t special = static_cast<std::size_t>(d_plus - 1);
  flows[special] = q + (r > 0 ? 1 : 0);

  // Rotor-deal the rest over the first 2d−1 ports: q each plus r−1 extras
  // (or 0 extras when r == 0).
  const Load extras = r > 0 ? r - 1 : 0;
  for (int p = 0; p < rotor_ports_; ++p) {
    flows[static_cast<std::size_t>(p)] = q;
  }
  int& rotor = rotor_[static_cast<std::size_t>(u)];
  for (Load k = 0; k < extras; ++k) {
    ++flows[static_cast<std::size_t>((rotor + k) % rotor_ports_)];
  }
  rotor = static_cast<int>((rotor + extras) % rotor_ports_);
}

}  // namespace dlb
