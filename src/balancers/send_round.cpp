#include "balancers/send_round.hpp"

#include <algorithm>

#include "util/assertions.hpp"
#include "util/intmath.hpp"

namespace dlb {

void SendRound::reset(const Graph& graph, int d_loops) {
  // Round-up steps send d·⌈x/d⁺⌉ over original edges, which only fits in
  // the available load when 2r >= d⁺ implies r >= d, i.e. d⁺ >= 2d.
  DLB_REQUIRE(d_loops >= graph.degree(), "SendRound requires d° >= d");
  d_ = graph.degree();
  d_loops_ = d_loops;
  d_plus_ = d_ + d_loops;
  guaranteed_s_ = d_plus_ > 2 * d_ ? (d_plus_ - 2 * d_ + 1) / 2 : 0;
}

void SendRound::decide(NodeId /*u*/, Load load, Step /*t*/,
                       std::span<Load> flows) {
  DLB_REQUIRE(load >= 0, "SendRound cannot handle negative load");
  const Load q = floor_div(load, d_plus_);
  const Load r = load - q * d_plus_;          // e(u) ∈ [0, d⁺)
  const Load nearest = round_nearest_div(load, d_plus_);

  // Original edges all receive [x/d⁺].
  for (int p = 0; p < d_; ++p) flows[static_cast<std::size_t>(p)] = nearest;

  // Self-loops: round-fair split of what remains, ceiling-first so the
  // algorithm is as self-preferring as the totals allow.
  Load extras;  // number of self-loops that receive q+1 instead of q
  if (nearest == q) {
    // Round-down case: d·q went out, excess is r; at most d° self-loops
    // can take one extra each, the rest stays as the remainder.
    extras = std::min<Load>(r, d_loops_);
  } else {
    // Round-up case (2r >= d⁺ implies r >= d, so load covers d·(q+1)):
    // remaining load is q·d° + (r − d) with 0 <= r − d < d°.
    extras = r - d_;
    DLB_ASSERT(extras >= 0 && extras < d_loops_ + 1,
               "SendRound: round-up arithmetic broken");
  }
  for (int k = 0; k < d_loops_; ++k) {
    flows[static_cast<std::size_t>(d_ + k)] = q + (k < extras ? 1 : 0);
  }
}

}  // namespace dlb
