#include "balancers/send_round.hpp"

#include <algorithm>

#include "graph/topology.hpp"
#include "util/assertions.hpp"
#include "util/intmath.hpp"

namespace dlb {

void SendRound::reset(const Graph& graph, int d_loops) {
  // Round-up steps send d·⌈x/d⁺⌉ over original edges, which only fits in
  // the available load when 2r >= d⁺ implies r >= d, i.e. d⁺ >= 2d.
  DLB_REQUIRE(d_loops >= graph.degree(), "SendRound requires d° >= d");
  d_ = graph.degree();
  d_loops_ = d_loops;
  d_plus_ = d_ + d_loops;
  guaranteed_s_ = d_plus_ > 2 * d_ ? (d_plus_ - 2 * d_ + 1) / 2 : 0;
  div_ = NonNegDiv(d_plus_);
  div_twice_ = NonNegDiv(2 * d_plus_);
}

void SendRound::decide(NodeId /*u*/, Load load, Step /*t*/,
                       std::span<Load> flows) {
  DLB_REQUIRE(load >= 0, "SendRound cannot handle negative load");
  const Load q = floor_div(load, d_plus_);
  const Load r = load - q * d_plus_;          // e(u) ∈ [0, d⁺)
  const Load nearest = round_nearest_div(load, d_plus_);

  // Original edges all receive [x/d⁺].
  for (int p = 0; p < d_; ++p) flows[static_cast<std::size_t>(p)] = nearest;

  // Self-loops: round-fair split of what remains, ceiling-first so the
  // algorithm is as self-preferring as the totals allow.
  Load extras;  // number of self-loops that receive q+1 instead of q
  if (nearest == q) {
    // Round-down case: d·q went out, excess is r; at most d° self-loops
    // can take one extra each, the rest stays as the remainder.
    extras = std::min<Load>(r, d_loops_);
  } else {
    // Round-up case (2r >= d⁺ implies r >= d, so load covers d·(q+1)):
    // remaining load is q·d° + (r − d) with 0 <= r − d < d°.
    extras = r - d_;
    DLB_ASSERT(extras >= 0 && extras < d_loops_ + 1,
               "SendRound: round-up arithmetic broken");
  }
  for (int k = 0; k < d_loops_; ++k) {
    flows[static_cast<std::size_t>(d_ + k)] = q + (k < extras ? 1 : 0);
  }
}

void SendRound::decide_range(NodeId first, NodeId last,
                             std::span<const Load> loads, Step /*t*/,
                             FlowSink& sink) {
  const int d = d_;
  if (sink.row_mode()) {
    for (NodeId u = first; u < last; ++u) {
      const Load x = loads[static_cast<std::size_t>(u)];
      DLB_REQUIRE(x >= 0, "SendRound cannot handle negative load");
      const Load q = div_.quot(x);
      const Load r = x - q * d_plus_;
      const Load nearest = div_twice_.quot(2 * x + d_plus_);
      std::span<Load> row = sink.row(u);
      for (int p = 0; p < d; ++p) row[static_cast<std::size_t>(p)] = nearest;
      // Same ceiling-first self-loop split as decide().
      const Load extras =
          nearest == q ? std::min<Load>(r, d_loops_) : r - d;
      for (int k = 0; k < d_loops_; ++k) {
        row[static_cast<std::size_t>(d + k)] = q + (k < extras ? 1 : 0);
      }
    }
    return;
  }
  with_topology(sink.graph(), [&](const auto& topo) {
    scatter_range(topo, first, last, loads, sink);
  });
}

template <class Topo>
void SendRound::scatter_range(const Topo& topo, NodeId first, NodeId last,
                              std::span<const Load> loads, FlowSink& sink) {
  const int d = topo.degree();
  const auto next = sink.scatter();
  auto cur = topo.cursor(first);
  for (NodeId u = first; u < last; ++u, cur.advance()) {
    const Load x = loads[static_cast<std::size_t>(u)];
    DLB_REQUIRE(x >= 0, "SendRound cannot handle negative load");
    const Load nearest = div_twice_.quot(2 * x + d_plus_);
    for (int p = 0; p < d; ++p) {
      next.add(static_cast<std::size_t>(cur.neighbor(p)), nearest);
    }
    // Self-loop shares and the remainder stay local — their split across
    // self-loop ports never moves a token.
    next.add(static_cast<std::size_t>(u), x - nearest * d);
  }
}

}  // namespace dlb
