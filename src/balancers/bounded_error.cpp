#include "balancers/bounded_error.hpp"

#include <algorithm>
#include <cmath>

#include "graph/topology.hpp"
#include "util/assertions.hpp"
#include "util/simd.hpp"

namespace dlb {

#ifdef DLB_SIMD_AVX2
namespace {

// d == 2 arithmetic core: the per-edge state layout [u*2 + p] interleaves
// the two carries of each node, so one (de)interleave turns two vector
// loads into a port-0 and a port-1 carry vector and the whole
// share/round/residual chain runs on 4 nodes at once. Every operation is
// an exact IEEE identity on |x| <= kExactMax (division and addition are
// correctly rounded in both paths; round_half_away ≡ llround; the
// magic-number conversions are exact in range), so the carries and flows
// are byte-identical to the scalar loop. Blocks with any lane outside the
// exact range fall back to the scalar body — including the scatter adds,
// which run per node in the scalar order either way.
template <class Topo>
void scatter_d2_avx2(const Topo& topo, NodeId first, NodeId last,
                     std::span<const Load> loads, FlowSink& sink,
                     double* carry, int d_plus) {
  const auto next = sink.scatter();
  auto cur = topo.cursor(first);
  const Load* xs = loads.data();
  const __m256d vdp = _mm256_set1_pd(static_cast<double>(d_plus));

  const auto scalar_node = [&](NodeId u) {
    const Load x = xs[static_cast<std::size_t>(u)];
    const double share = static_cast<double>(x) / d_plus;
    Load sent = 0;
    for (int p = 0; p < 2; ++p) {
      double& c = carry[static_cast<std::size_t>(u) * 2 +
                        static_cast<std::size_t>(p)];
      const double desired = share + c;
      const auto f = static_cast<Load>(std::llround(desired));
      c = desired - static_cast<double>(f);
      next.add(static_cast<std::size_t>(cur.neighbor(p)), f);
      sent += f;
    }
    next.add(static_cast<std::size_t>(u), x - sent);
    cur.advance();
  };

  NodeId u = first;
  alignas(32) Load f0s[simd::kLanes];
  alignas(32) Load f1s[simd::kLanes];
  alignas(32) Load keep[simd::kLanes];
  for (; u + simd::kLanes <= last; u += simd::kLanes) {
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + u));
    if (simd::any_outside_exact_range(vx)) {
      for (int i = 0; i < simd::kLanes; ++i) scalar_node(u + i);
      continue;
    }
    // |share| <= kExactMax/2 and |carry| <= 1/2 (the scheme's invariant),
    // so desired and its rounding stay inside the exact-conversion range.
    const __m256d share = _mm256_div_pd(simd::to_double(vx), vdp);
    double* cp = carry + static_cast<std::size_t>(u) * 2;
    __m256d c0;
    __m256d c1;
    simd::deinterleave2_pd(_mm256_loadu_pd(cp), _mm256_loadu_pd(cp + 4), c0,
                           c1);
    const __m256d des0 = _mm256_add_pd(share, c0);
    const __m256d des1 = _mm256_add_pd(share, c1);
    const __m256d r0 = simd::round_half_away(des0);
    const __m256d r1 = simd::round_half_away(des1);
    __m256d a;
    __m256d b;
    simd::interleave2_pd(_mm256_sub_pd(des0, r0), _mm256_sub_pd(des1, r1), a,
                         b);
    _mm256_storeu_pd(cp, a);
    _mm256_storeu_pd(cp + 4, b);
    const __m256i f0 = simd::to_int64(r0);
    const __m256i f1 = simd::to_int64(r1);
    _mm256_store_si256(reinterpret_cast<__m256i*>(f0s), f0);
    _mm256_store_si256(reinterpret_cast<__m256i*>(f1s), f1);
    _mm256_store_si256(reinterpret_cast<__m256i*>(keep),
                       _mm256_sub_epi64(vx, _mm256_add_epi64(f0, f1)));
    for (int i = 0; i < simd::kLanes; ++i) {
      next.add(static_cast<std::size_t>(cur.neighbor(0)), f0s[i]);
      next.add(static_cast<std::size_t>(cur.neighbor(1)), f1s[i]);
      next.add(static_cast<std::size_t>(u + i), keep[i]);
      cur.advance();
    }
  }
  for (; u < last; ++u) scalar_node(u);
}

}  // namespace
#endif  // DLB_SIMD_AVX2

void BoundedError::reset(const Graph& graph, int d_loops) {
  DLB_REQUIRE(d_loops >= 0, "BoundedError: negative self-loop count");
  d_ = graph.degree();
  d_plus_ = d_ + d_loops;
  carry_.assign(static_cast<std::size_t>(graph.num_nodes()) * d_, 0.0);
}

void BoundedError::decide(NodeId u, Load load, Step /*t*/,
                          std::span<Load> flows) {
  const double share = static_cast<double>(load) / d_plus_;
  for (int p = 0; p < d_; ++p) {
    double& c = carry_[static_cast<std::size_t>(u) * d_ +
                       static_cast<std::size_t>(p)];
    const double desired = share + c;
    const auto f = static_cast<Load>(std::llround(desired));
    c = desired - static_cast<double>(f);
    flows[static_cast<std::size_t>(p)] = f;
  }
  // Self-loops: everything not sent stays as the remainder.
  for (int p = d_; p < d_plus_; ++p) flows[static_cast<std::size_t>(p)] = 0;
}

void BoundedError::decide_range(NodeId first, NodeId last,
                                std::span<const Load> loads, Step /*t*/,
                                FlowSink& sink) {
  if (sink.row_mode()) {
    const int d_plus = sink.ports();
    for (NodeId u = first; u < last; ++u) {
      const double share =
          static_cast<double>(loads[static_cast<std::size_t>(u)]) / d_plus_;
      std::span<Load> row = sink.row(u);
      for (int p = 0; p < d_; ++p) {
        double& c = carry_[static_cast<std::size_t>(u) * d_ +
                           static_cast<std::size_t>(p)];
        const double desired = share + c;
        const auto f = static_cast<Load>(std::llround(desired));
        c = desired - static_cast<double>(f);
        row[static_cast<std::size_t>(p)] = f;
      }
      // Self-loops send nothing; everything unsent is the remainder.
      for (int p = d_; p < d_plus; ++p) row[static_cast<std::size_t>(p)] = 0;
    }
    return;
  }
  with_topology(sink.graph(), [&](const auto& topo) {
    scatter_range(topo, first, last, loads, sink);
  });
}

template <class Topo>
void BoundedError::scatter_range(const Topo& topo, NodeId first, NodeId last,
                                 std::span<const Load> loads, FlowSink& sink) {
  const int d = topo.degree();
#ifdef DLB_SIMD_AVX2
  if (d == 2 && d_ == 2 && simd::enabled() &&
      last - first >= 2 * simd::kLanes) {
    scatter_d2_avx2(topo, first, last, loads, sink, carry_.data(), d_plus_);
    return;
  }
#endif
  const auto next = sink.scatter();
  auto cur = topo.cursor(first);
  for (NodeId u = first; u < last; ++u, cur.advance()) {
    const Load x = loads[static_cast<std::size_t>(u)];
    const double share = static_cast<double>(x) / d_plus_;
    Load sent = 0;
    for (int p = 0; p < d; ++p) {
      double& c = carry_[static_cast<std::size_t>(u) * d_ +
                         static_cast<std::size_t>(p)];
      const double desired = share + c;
      const auto f = static_cast<Load>(std::llround(desired));
      c = desired - static_cast<double>(f);
      next.add(static_cast<std::size_t>(cur.neighbor(p)), f);
      sent += f;
    }
    // Self-loop ports send nothing; the rest (possibly negative) stays.
    next.add(static_cast<std::size_t>(u), x - sent);
  }
}

double BoundedError::max_abs_carry() const {
  double worst = 0.0;
  for (double c : carry_) worst = std::max(worst, std::abs(c));
  return worst;
}


void BoundedError::save_state(StateWriter& w) const { w.vec_f64(carry_); }

void BoundedError::load_state(StateReader& r) {
  std::vector<double> carry = r.vec_f64();
  if (carry.size() != carry_.size()) {
    throw serial_error("BoundedError state: carry size mismatch");
  }
  // The bounded-error invariant itself: llround keeps every residual in
  // [-1/2, 1/2] (both endpoints reachable via exact .5 halfway cases), so
  // anything outside cannot have come from a valid run of this scheme.
  for (double c : carry) {
    if (!(c >= -0.5 && c <= 0.5)) {
      throw serial_error("BoundedError state: carry out of range");
    }
  }
  carry_ = std::move(carry);
}

}  // namespace dlb
