#include "balancers/bounded_error.hpp"

#include <algorithm>
#include <cmath>

#include "graph/topology.hpp"
#include "util/assertions.hpp"

namespace dlb {

void BoundedError::reset(const Graph& graph, int d_loops) {
  DLB_REQUIRE(d_loops >= 0, "BoundedError: negative self-loop count");
  d_ = graph.degree();
  d_plus_ = d_ + d_loops;
  carry_.assign(static_cast<std::size_t>(graph.num_nodes()) * d_, 0.0);
}

void BoundedError::decide(NodeId u, Load load, Step /*t*/,
                          std::span<Load> flows) {
  const double share = static_cast<double>(load) / d_plus_;
  for (int p = 0; p < d_; ++p) {
    double& c = carry_[static_cast<std::size_t>(u) * d_ +
                       static_cast<std::size_t>(p)];
    const double desired = share + c;
    const auto f = static_cast<Load>(std::llround(desired));
    c = desired - static_cast<double>(f);
    flows[static_cast<std::size_t>(p)] = f;
  }
  // Self-loops: everything not sent stays as the remainder.
  for (int p = d_; p < d_plus_; ++p) flows[static_cast<std::size_t>(p)] = 0;
}

void BoundedError::decide_range(NodeId first, NodeId last,
                                std::span<const Load> loads, Step /*t*/,
                                FlowSink& sink) {
  if (sink.row_mode()) {
    const int d_plus = sink.ports();
    for (NodeId u = first; u < last; ++u) {
      const double share =
          static_cast<double>(loads[static_cast<std::size_t>(u)]) / d_plus_;
      std::span<Load> row = sink.row(u);
      for (int p = 0; p < d_; ++p) {
        double& c = carry_[static_cast<std::size_t>(u) * d_ +
                           static_cast<std::size_t>(p)];
        const double desired = share + c;
        const auto f = static_cast<Load>(std::llround(desired));
        c = desired - static_cast<double>(f);
        row[static_cast<std::size_t>(p)] = f;
      }
      // Self-loops send nothing; everything unsent is the remainder.
      for (int p = d_; p < d_plus; ++p) row[static_cast<std::size_t>(p)] = 0;
    }
    return;
  }
  with_topology(sink.graph(), [&](const auto& topo) {
    scatter_range(topo, first, last, loads, sink);
  });
}

template <class Topo>
void BoundedError::scatter_range(const Topo& topo, NodeId first, NodeId last,
                                 std::span<const Load> loads, FlowSink& sink) {
  const int d = topo.degree();
  const auto next = sink.scatter();
  auto cur = topo.cursor(first);
  for (NodeId u = first; u < last; ++u, cur.advance()) {
    const Load x = loads[static_cast<std::size_t>(u)];
    const double share = static_cast<double>(x) / d_plus_;
    Load sent = 0;
    for (int p = 0; p < d; ++p) {
      double& c = carry_[static_cast<std::size_t>(u) * d_ +
                         static_cast<std::size_t>(p)];
      const double desired = share + c;
      const auto f = static_cast<Load>(std::llround(desired));
      c = desired - static_cast<double>(f);
      next.add(static_cast<std::size_t>(cur.neighbor(p)), f);
      sent += f;
    }
    // Self-loop ports send nothing; the rest (possibly negative) stays.
    next.add(static_cast<std::size_t>(u), x - sent);
  }
}

double BoundedError::max_abs_carry() const {
  double worst = 0.0;
  for (double c : carry_) worst = std::max(worst, std::abs(c));
  return worst;
}


void BoundedError::save_state(StateWriter& w) const { w.vec_f64(carry_); }

void BoundedError::load_state(StateReader& r) {
  std::vector<double> carry = r.vec_f64();
  if (carry.size() != carry_.size()) {
    throw serial_error("BoundedError state: carry size mismatch");
  }
  // The bounded-error invariant itself: llround keeps every residual in
  // [-1/2, 1/2] (both endpoints reachable via exact .5 halfway cases), so
  // anything outside cannot have come from a valid run of this scheme.
  for (double c : carry) {
    if (!(c >= -0.5 && c <= 0.5)) {
      throw serial_error("BoundedError state: carry out of range");
    }
  }
  carry_ = std::move(carry);
}

}  // namespace dlb
