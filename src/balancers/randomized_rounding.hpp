// RAND-ROUND: randomized rounding of edge flows (Table 1 row 3).
//
// Sauerwald–Sun (FOCS 2012): the continuous process would send x/d⁺ over
// every edge; the discrete scheme sends ⌊x/d⁺⌋ + Bernoulli(frac) tokens
// independently per original edge, and the floor share per self-loop.
// Achieves O(√(d log n)) discrepancy after O(T) w.h.p. — better than any
// deterministic diffusive scheme — but the independent roundings can
// oversubscribe a node's load: the remainder, and subsequently the node
// load, can go negative (the paper's "NL" column). The engine tolerates
// this because allows_negative() is true; benches report min_load_seen.
#pragma once

#include <cstdint>

#include "core/balancer.hpp"
#include "util/rng.hpp"

namespace dlb {

class RandomizedRounding : public Balancer {
 public:
  explicit RandomizedRounding(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  std::string name() const override { return "RAND-ROUND"; }
  void reset(const Graph& graph, int d_loops) override;
  void decide(NodeId u, Load load, Step t, std::span<Load> flows) override;
  bool allows_negative() const override { return true; }

  /// Snapshot state: the sequential RNG words (see RandomizedExtra).
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 private:
  std::uint64_t seed_;
  Rng rng_;
  int d_ = 0;
  int d_plus_ = 0;
};

}  // namespace dlb
