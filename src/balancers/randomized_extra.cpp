#include "balancers/randomized_extra.hpp"

#include <algorithm>

#include "util/assertions.hpp"
#include "util/intmath.hpp"

namespace dlb {

void RandomizedExtra::reset(const Graph& graph, int d_loops) {
  DLB_REQUIRE(d_loops >= 0, "RandomizedExtra: negative self-loop count");
  d_plus_ = graph.degree() + d_loops;
  rng_ = Rng(seed_);  // bit-reproducible runs: reseed on reset
}

void RandomizedExtra::decide(NodeId /*u*/, Load load, Step /*t*/,
                             std::span<Load> flows) {
  DLB_REQUIRE(load >= 0, "RandomizedExtra cannot handle negative load");
  const Load q = floor_div(load, d_plus_);
  const Load r = load - q * d_plus_;
  std::fill(flows.begin(), flows.end(), q);
  for (Load k = 0; k < r; ++k) {
    const auto p = rng_.uniform_u64(static_cast<std::uint64_t>(d_plus_));
    ++flows[static_cast<std::size_t>(p)];
  }
}


void RandomizedExtra::save_state(StateWriter& w) const {
  for (std::uint64_t word : rng_.state()) w.u64(word);
}

void RandomizedExtra::load_state(StateReader& r) {
  std::array<std::uint64_t, 4> words;
  for (auto& word : words) word = r.u64();
  rng_.set_state(words);
}

}  // namespace dlb
