#include "balancers/registry.hpp"

#include <mutex>
#include <utility>

#include "balancers/bounded_error.hpp"
#include "balancers/continuous_mimic.hpp"
#include "balancers/fixed_priority.hpp"
#include "balancers/randomized_extra.hpp"
#include "balancers/randomized_rounding.hpp"
#include "balancers/rotor_router.hpp"
#include "balancers/rotor_router_star.hpp"
#include "balancers/send_floor.hpp"
#include "balancers/send_round.hpp"
#include "util/assertions.hpp"

namespace dlb {

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::kFixedPriority,      Algorithm::kRandomizedExtra,
          Algorithm::kRandomizedRounding, Algorithm::kContinuousMimic,
          Algorithm::kBoundedError,       Algorithm::kSendFloor,
          Algorithm::kSendRound,          Algorithm::kRotorRouter,
          Algorithm::kRotorRouterStar};
}

std::string algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kSendFloor: return "SEND(floor)";
    case Algorithm::kSendRound: return "SEND(nearest)";
    case Algorithm::kRotorRouter: return "ROTOR-ROUTER";
    case Algorithm::kRotorRouterStar: return "ROTOR-ROUTER*";
    case Algorithm::kFixedPriority: return "FIXED-PRIORITY";
    case Algorithm::kRandomizedExtra: return "RAND-EXTRA";
    case Algorithm::kRandomizedRounding: return "RAND-ROUND";
    case Algorithm::kContinuousMimic: return "CONT-MIMIC";
    case Algorithm::kBoundedError: return "BOUNDED-ERROR";
  }
  DLB_REQUIRE(false, "algorithm_name: unknown algorithm");
  return {};
}

std::unique_ptr<Balancer> make_balancer(Algorithm a, std::uint64_t seed) {
  switch (a) {
    case Algorithm::kSendFloor: return std::make_unique<SendFloor>();
    case Algorithm::kSendRound: return std::make_unique<SendRound>();
    case Algorithm::kRotorRouter: return std::make_unique<RotorRouter>(seed);
    case Algorithm::kRotorRouterStar:
      return std::make_unique<RotorRouterStar>(seed);
    case Algorithm::kFixedPriority: return std::make_unique<FixedPriority>();
    case Algorithm::kRandomizedExtra:
      return std::make_unique<RandomizedExtra>(seed);
    case Algorithm::kRandomizedRounding:
      return std::make_unique<RandomizedRounding>(seed);
    case Algorithm::kContinuousMimic:
      return std::make_unique<ContinuousMimic>();
    case Algorithm::kBoundedError:
      return std::make_unique<BoundedError>();
  }
  DLB_REQUIRE(false, "make_balancer: unknown algorithm");
  return nullptr;
}

int min_self_loops(Algorithm a, int degree) {
  switch (a) {
    case Algorithm::kSendRound: return degree;  // round-up must fit the load
    case Algorithm::kRotorRouterStar: return degree;  // fixed d° = d
    default: return 0;
  }
}

bool requires_exact_d_loops(Algorithm a) {
  return a == Algorithm::kRotorRouterStar;
}

BalancerFactory balancer_factory(Algorithm a) {
  return [a](std::uint64_t seed) { return make_balancer(a, seed); };
}

namespace {

struct RegistryEntry {
  std::string name;
  BalancerFactory factory;
  BalancerTraits traits;
};

/// Name-keyed runtime registry. Held in a function-local static so that
/// pre-registration of the Table-1 algorithms happens on first use
/// regardless of static-init order.
struct Registry {
  std::mutex mutex;
  std::vector<RegistryEntry> entries;  // registration order

  Registry() {
    for (Algorithm a : all_algorithms()) {
      BalancerTraits traits;
      traits.min_loops = [a](int degree) { return min_self_loops(a, degree); };
      traits.exact_d_loops = requires_exact_d_loops(a);
      entries.push_back(
          {algorithm_name(a), balancer_factory(a), std::move(traits)});
    }
  }

  RegistryEntry* find_locked(const std::string& name) {
    for (auto& e : entries) {
      if (e.name == name) return &e;
    }
    return nullptr;
  }
};

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace

void register_balancer(const std::string& name, BalancerFactory factory,
                       BalancerTraits traits) {
  DLB_REQUIRE(!name.empty(), "register_balancer: empty name");
  DLB_REQUIRE(factory != nullptr, "register_balancer: null factory");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  if (RegistryEntry* existing = r.find_locked(name)) {
    existing->factory = std::move(factory);
    existing->traits = std::move(traits);
    return;
  }
  r.entries.push_back({name, std::move(factory), std::move(traits)});
}

bool balancer_registered(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.find_locked(name) != nullptr;
}

std::vector<std::string> registered_balancer_names() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.entries.size());
  for (const auto& e : r.entries) names.push_back(e.name);
  return names;
}

BalancerFactory find_balancer_factory(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  RegistryEntry* e = r.find_locked(name);
  DLB_REQUIRE(e != nullptr, "find_balancer_factory: unknown balancer " + name);
  return e->factory;
}

BalancerTraits find_balancer_traits(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  RegistryEntry* e = r.find_locked(name);
  DLB_REQUIRE(e != nullptr, "find_balancer_traits: unknown balancer " + name);
  return e->traits;
}

}  // namespace dlb
