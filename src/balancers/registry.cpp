#include "balancers/registry.hpp"

#include "balancers/bounded_error.hpp"
#include "balancers/continuous_mimic.hpp"
#include "balancers/fixed_priority.hpp"
#include "balancers/randomized_extra.hpp"
#include "balancers/randomized_rounding.hpp"
#include "balancers/rotor_router.hpp"
#include "balancers/rotor_router_star.hpp"
#include "balancers/send_floor.hpp"
#include "balancers/send_round.hpp"
#include "util/assertions.hpp"

namespace dlb {

std::vector<Algorithm> all_algorithms() {
  return {Algorithm::kFixedPriority,      Algorithm::kRandomizedExtra,
          Algorithm::kRandomizedRounding, Algorithm::kContinuousMimic,
          Algorithm::kBoundedError,       Algorithm::kSendFloor,
          Algorithm::kSendRound,          Algorithm::kRotorRouter,
          Algorithm::kRotorRouterStar};
}

std::string algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kSendFloor: return "SEND(floor)";
    case Algorithm::kSendRound: return "SEND(nearest)";
    case Algorithm::kRotorRouter: return "ROTOR-ROUTER";
    case Algorithm::kRotorRouterStar: return "ROTOR-ROUTER*";
    case Algorithm::kFixedPriority: return "FIXED-PRIORITY";
    case Algorithm::kRandomizedExtra: return "RAND-EXTRA";
    case Algorithm::kRandomizedRounding: return "RAND-ROUND";
    case Algorithm::kContinuousMimic: return "CONT-MIMIC";
    case Algorithm::kBoundedError: return "BOUNDED-ERROR";
  }
  DLB_REQUIRE(false, "algorithm_name: unknown algorithm");
  return {};
}

std::unique_ptr<Balancer> make_balancer(Algorithm a, std::uint64_t seed) {
  switch (a) {
    case Algorithm::kSendFloor: return std::make_unique<SendFloor>();
    case Algorithm::kSendRound: return std::make_unique<SendRound>();
    case Algorithm::kRotorRouter: return std::make_unique<RotorRouter>(seed);
    case Algorithm::kRotorRouterStar:
      return std::make_unique<RotorRouterStar>(seed);
    case Algorithm::kFixedPriority: return std::make_unique<FixedPriority>();
    case Algorithm::kRandomizedExtra:
      return std::make_unique<RandomizedExtra>(seed);
    case Algorithm::kRandomizedRounding:
      return std::make_unique<RandomizedRounding>(seed);
    case Algorithm::kContinuousMimic:
      return std::make_unique<ContinuousMimic>();
    case Algorithm::kBoundedError:
      return std::make_unique<BoundedError>();
  }
  DLB_REQUIRE(false, "make_balancer: unknown algorithm");
  return nullptr;
}

int min_self_loops(Algorithm a, int degree) {
  switch (a) {
    case Algorithm::kSendRound: return degree;  // round-up must fit the load
    case Algorithm::kRotorRouterStar: return degree;  // fixed d° = d
    default: return 0;
  }
}

bool requires_exact_d_loops(Algorithm a) {
  return a == Algorithm::kRotorRouterStar;
}

}  // namespace dlb
