// The continuous (idealized) diffusion process x_{t+1} = P·x_t.
//
// This is the reference Markovian process every discrete scheme is
// compared against (Section 1: node u keeps d°/d⁺ of its load and sends
// 1/d⁺ to each neighbour). It balances perfectly in the limit; its
// balancing time defines the T against which all discrete discrepancies
// are measured. Real-valued, hence not a Balancer.
#pragma once

#include <vector>

#include "core/load_vector.hpp"
#include "graph/graph.hpp"
#include "markov/matrix.hpp"

namespace dlb {

/// Real-valued synchronous diffusion on the balancing graph.
class ContinuousDiffusion {
 public:
  ContinuousDiffusion(const Graph& g, int self_loops,
                      std::vector<double> initial);

  /// Convenience: start from an integer token vector.
  ContinuousDiffusion(const Graph& g, int self_loops,
                      const LoadVector& initial);

  void step();
  void run(Step steps);

  const std::vector<double>& loads() const noexcept { return x_; }
  Step time() const noexcept { return t_; }
  double discrepancy() const;
  double total() const;

 private:
  TransitionOperator op_;
  std::vector<double> x_;
  Step t_ = 0;
};

}  // namespace dlb
