#include "balancers/rotor_router.hpp"

#include <numeric>

#include "graph/topology.hpp"
#include "util/assertions.hpp"
#include "util/intmath.hpp"
#include "util/rng.hpp"

namespace dlb {

void RotorRouter::reset(const Graph& graph, int d_loops) {
  DLB_REQUIRE(d_loops >= 0, "RotorRouter: negative self-loop count");
  const auto n = static_cast<std::size_t>(graph.num_nodes());
  d_plus_ = graph.degree() + d_loops;
  DLB_REQUIRE(d_plus_ >= 1, "RotorRouter: needs at least one port");
  div_ = NonNegDiv(d_plus_);

  port_order_.resize(n * static_cast<std::size_t>(d_plus_));
  rotor_.assign(n, 0);

  Rng rng(seed_);
  for (std::size_t u = 0; u < n; ++u) {
    std::int32_t* row = port_order_.data() + u * static_cast<std::size_t>(d_plus_);
    std::iota(row, row + d_plus_, 0);
    if (seed_ != 0) {
      std::span<std::int32_t> perm{row, static_cast<std::size_t>(d_plus_)};
      rng.shuffle(perm);
      rotor_[u] = static_cast<int>(rng.uniform_u64(
          static_cast<std::uint64_t>(d_plus_)));
    }
  }

  if (!prescribed_order_.empty()) {
    DLB_REQUIRE(prescribed_order_.size() == port_order_.size(),
                "prescribed port order has wrong size");
    // Each node's row must be a permutation of its ports.
    for (std::size_t u = 0; u < n; ++u) {
      std::vector<char> seen(static_cast<std::size_t>(d_plus_), 0);
      for (int k = 0; k < d_plus_; ++k) {
        const std::int32_t p =
            prescribed_order_[u * static_cast<std::size_t>(d_plus_) +
                              static_cast<std::size_t>(k)];
        DLB_REQUIRE(p >= 0 && p < d_plus_ && !seen[static_cast<std::size_t>(p)],
                    "prescribed port order is not a permutation");
        seen[static_cast<std::size_t>(p)] = 1;
      }
    }
    port_order_ = prescribed_order_;
  }

  if (!prescribed_rotors_.empty()) {
    DLB_REQUIRE(prescribed_rotors_.size() == n,
                "prescribed rotor vector has wrong size");
    for (std::size_t u = 0; u < n; ++u) {
      DLB_REQUIRE(prescribed_rotors_[u] >= 0 && prescribed_rotors_[u] < d_plus_,
                  "prescribed rotor out of range");
      rotor_[u] = prescribed_rotors_[u];
    }
  }

  // Structured specialization: with the natural port order (seed 0, no
  // prescribed permutation) cyclic position == port, so an extra token's
  // destination is pure arithmetic — neighbor(u, pos) for pos < d, u
  // itself for self-loop positions. The scatter kernel then computes
  // targets through the topology cursor and the n·2d⁺ target table is
  // never built (on a tagged cycle/torus/hypercube the whole rotor walk
  // becomes register arithmetic on (position, d⁺)). Shuffled or
  // prescribed orders encode genuine per-node state, so they keep the
  // table.
  natural_order_ = seed_ == 0 && prescribed_order_.empty();
  const int d = graph.degree();
  extra_targets_.clear();
  port_order2x_.clear();
  if (natural_order_) return;

  // Resolve every cyclic position to the node an extra token lands on
  // (doubled per node so the kernel's rotor walk never wraps). The
  // row-kernel companion table (port_order2x_) is built lazily in
  // prepare_round — scatter-only runs never pay for it.
  extra_targets_.resize(n * 2 * static_cast<std::size_t>(d_plus_));
  for (std::size_t u = 0; u < n; ++u) {
    const std::int32_t* row =
        port_order_.data() + u * static_cast<std::size_t>(d_plus_);
    NodeId* tgt = extra_targets_.data() + u * 2 * static_cast<std::size_t>(d_plus_);
    for (int pos = 0; pos < d_plus_; ++pos) {
      const std::int32_t port = row[pos];
      const NodeId dest =
          port < d ? graph.neighbor(static_cast<NodeId>(u), port)
                   : static_cast<NodeId>(u);
      tgt[pos] = dest;
      tgt[d_plus_ + pos] = dest;
    }
  }
}

void RotorRouter::prepare_round(std::span<const Load> /*loads*/, Step /*t*/,
                                FlowSink& sink) {
  // The doubled port permutation exists only for row-mode rounds; build
  // it here (prepare_round is always serial) on first need so the
  // scatter hot path never allocates it.
  if (!sink.row_mode() || !port_order2x_.empty()) return;
  const std::size_t n = rotor_.size();
  port_order2x_.resize(n * 2 * static_cast<std::size_t>(d_plus_));
  for (std::size_t u = 0; u < n; ++u) {
    const std::int32_t* row =
        port_order_.data() + u * static_cast<std::size_t>(d_plus_);
    std::int32_t* ports =
        port_order2x_.data() + u * 2 * static_cast<std::size_t>(d_plus_);
    for (int pos = 0; pos < d_plus_; ++pos) {
      ports[pos] = row[pos];
      ports[d_plus_ + pos] = row[pos];
    }
  }
}

void RotorRouter::set_initial_rotors(std::vector<int> rotors) {
  prescribed_rotors_ = std::move(rotors);
}

void RotorRouter::set_port_order(std::vector<std::int32_t> order) {
  prescribed_order_ = std::move(order);
}

int RotorRouter::rotor(NodeId u) const {
  DLB_REQUIRE(u >= 0 && static_cast<std::size_t>(u) < rotor_.size(),
              "rotor: bad node");
  return rotor_[static_cast<std::size_t>(u)];
}

void RotorRouter::decide(NodeId u, Load load, Step /*t*/,
                         std::span<Load> flows) {
  DLB_REQUIRE(load >= 0, "RotorRouter cannot handle negative load");
  const Load q = floor_div(load, d_plus_);
  const Load r = load - q * d_plus_;

  const std::int32_t* order =
      port_order_.data() + static_cast<std::size_t>(u) * d_plus_;
  int& rotor = rotor_[static_cast<std::size_t>(u)];

  // Every port gets the floor share; the next r ports in cyclic order
  // (starting at the rotor) get one extra token each.
  for (int k = 0; k < d_plus_; ++k) {
    flows[static_cast<std::size_t>(order[k])] = q;
  }
  for (Load k = 0; k < r; ++k) {
    const int pos = static_cast<int>((rotor + k) % d_plus_);
    ++flows[static_cast<std::size_t>(order[pos])];
  }
  rotor = static_cast<int>((rotor + r) % d_plus_);
}

void RotorRouter::decide_range(NodeId first, NodeId last,
                               std::span<const Load> loads, Step /*t*/,
                               FlowSink& sink) {
  if (sink.row_mode()) {
    for (NodeId u = first; u < last; ++u) {
      const Load x = loads[static_cast<std::size_t>(u)];
      DLB_REQUIRE(x >= 0, "RotorRouter cannot handle negative load");
      const Load q = div_.quot(x);
      const int r = static_cast<int>(x - q * d_plus_);
      const std::int32_t* ports = port_order2x_.data() +
                                  static_cast<std::size_t>(u) * 2 * d_plus_;
      int& rotor = rotor_[static_cast<std::size_t>(u)];
      std::span<Load> row = sink.row(u);
      std::fill(row.begin(), row.end(), q);
      // Wrap-free, fixed-trip extras walk over the doubled permutation
      // (same masked-increment trick as the scatter kernel below).
      for (int k = 0; k < d_plus_ - 1; ++k) {
        row[static_cast<std::size_t>(ports[rotor + k])] +=
            static_cast<Load>(k < r);
      }
      rotor = rotor + r < d_plus_ ? rotor + r : rotor + r - d_plus_;
    }
    return;
  }
  with_topology(sink.graph(), [&](const auto& topo) {
    scatter_range(topo, first, last, loads, sink);
  });
}

template <class Topo>
void RotorRouter::scatter_range(const Topo& topo, NodeId first, NodeId last,
                                std::span<const Load> loads, FlowSink& sink) {
  const int d = topo.degree();
  const auto next = sink.scatter();
  auto cur = topo.cursor(first);
  if (natural_order_) {
    // Natural port order: cyclic position == port, so the extras walk is
    // pure arithmetic on (position, d⁺) — no permutation table exists.
    // Identical add order and destinations as the table walk below
    // (position pos maps to neighbor(u, pos) for pos < d, u otherwise).
    for (NodeId u = first; u < last; ++u, cur.advance()) {
      const Load x = loads[static_cast<std::size_t>(u)];
      DLB_REQUIRE(x >= 0, "RotorRouter cannot handle negative load");
      const Load q = div_.quot(x);
      const int r = static_cast<int>(x - q * d_plus_);
      int& rotor = rotor_[static_cast<std::size_t>(u)];

      for (int p = 0; p < d; ++p) {
        next.add(static_cast<std::size_t>(cur.neighbor(p)), q);
      }
      // Fixed trip count of d⁺−1 with a masked increment; the
      // conditional subtract keeps the walk wrap- and division-free.
      for (int k = 0; k < d_plus_ - 1; ++k) {
        int pos = rotor + k;
        pos -= pos >= d_plus_ ? d_plus_ : 0;
        const NodeId dest = pos < d ? cur.neighbor(pos) : u;
        next.add(static_cast<std::size_t>(dest), static_cast<Load>(k < r));
      }
      rotor = rotor + r < d_plus_ ? rotor + r : rotor + r - d_plus_;
      next.add(static_cast<std::size_t>(u), x - q * d - r);
    }
    return;
  }
  for (NodeId u = first; u < last; ++u, cur.advance()) {
    const Load x = loads[static_cast<std::size_t>(u)];
    DLB_REQUIRE(x >= 0, "RotorRouter cannot handle negative load");
    const Load q = div_.quot(x);
    const int r = static_cast<int>(x - q * d_plus_);
    const NodeId* targets = extra_targets_.data() +
                            static_cast<std::size_t>(u) * 2 * d_plus_;
    int& rotor = rotor_[static_cast<std::size_t>(u)];

    for (int p = 0; p < d; ++p) {
      next.add(static_cast<std::size_t>(cur.neighbor(p)), q);
    }
    // Every extra token lands on a precomputed target (neighbour or u
    // itself for self-loop positions). Fixed trip count of d⁺−1 with a
    // masked increment: r < d⁺ is data-dependent, so a `k < r` loop bound
    // would mispredict on nearly every node.
    for (int k = 0; k < d_plus_ - 1; ++k) {
      next.add(static_cast<std::size_t>(targets[rotor + k]),
               static_cast<Load>(k < r));
    }
    rotor = rotor + r < d_plus_ ? rotor + r : rotor + r - d_plus_;
    // Self-loop base shares stay local; the r extras are all accounted
    // for by the targets walk above.
    next.add(static_cast<std::size_t>(u), x - q * d - r);
  }
}


void RotorRouter::save_state(StateWriter& w) const { w.vec_int(rotor_); }

void RotorRouter::load_state(StateReader& r) {
  std::vector<int> rotor = r.vec_int();
  DLB_REQUIRE(rotor.size() == rotor_.size(),
              "RotorRouter: rotor state size mismatch");
  for (int pos : rotor) {
    DLB_REQUIRE(pos >= 0 && pos < d_plus_,
                "RotorRouter: rotor position out of range");
  }
  rotor_ = std::move(rotor);
}

}  // namespace dlb
