// ROTOR-ROUTER (Propp machine) load balancing.
//
// Each node owns a rotor over its d⁺ ports (original edges and
// self-loops, in a per-node cyclic order). Tokens are dealt round-robin
// starting at the rotor, which then advances past the last port served.
// Dealing x tokens gives every port ⌊x/d⁺⌋ and the next x mod d⁺ ports
// one extra — so over any interval the cumulative flows of two ports
// differ by at most 1: ROTOR-ROUTER is cumulatively 1-fair
// (Observation 2.2) and Theorem 2.3 applies when d° >= d.
//
// The cyclic port order is an arbitrary per-node permutation (the paper
// allows any); a seed of 0 keeps the natural order (original edges then
// self-loops), any other seed shuffles per node. Initial rotor positions
// can be prescribed explicitly — the Thm 4.3 lower-bound construction
// needs exactly that control.
#pragma once

#include <cstdint>
#include <vector>

#include "core/balancer.hpp"
#include "util/intmath.hpp"

namespace dlb {

class RotorRouter : public Balancer {
 public:
  /// `seed` randomizes per-node port orders and initial rotor positions;
  /// seed 0 means natural port order with all rotors at position 0.
  explicit RotorRouter(std::uint64_t seed = 0) : seed_(seed) {}

  std::string name() const override { return "ROTOR-ROUTER"; }
  void reset(const Graph& graph, int d_loops) override;
  void decide(NodeId u, Load load, Step t, std::span<Load> flows) override;

  /// Builds the row-kernel port table on the first row-mode round (the
  /// scatter hot path never allocates it).
  void prepare_round(std::span<const Load> loads, Step t,
                     FlowSink& sink) override;

  /// Scatter kernel: the floor share goes to every neighbour directly and
  /// only the x mod d⁺ extra tokens walk the rotor permutation — the flow
  /// row is never materialized. Row kernel: fill q, walk the extras over
  /// the doubled port permutation, both branch-free. The floor-share loop
  /// is templated on the topology (computed neighbours on structured
  /// graphs); the extras still walk the per-node permutation table, which
  /// encodes state no formula can replace.
  void decide_range(NodeId first, NodeId last, std::span<const Load> loads,
                    Step t, FlowSink& sink) override;

  bool parallel_decide_safe() const override { return true; }  // per-node rotors

  /// Prescribes initial rotor positions (applied at the next reset; must
  /// then match the graph size). Positions index the *cyclic order*, i.e.
  /// position k means the first token goes to the k-th port in this
  /// node's permutation.
  void set_initial_rotors(std::vector<int> rotors);

  /// Prescribes the cyclic port order explicitly: entry [u*d⁺ + k] is the
  /// port served k-th (counting from rotor position 0). Overrides the
  /// seed-derived permutation at the next reset. The Thm 4.3 adversary
  /// needs this to place the P1 ports ahead of the P2 ports.
  void set_port_order(std::vector<std::int32_t> order);

  /// Current rotor position of node u (for tests).
  int rotor(NodeId u) const;

  /// Snapshot state: the rotor positions (the port permutation is
  /// reconstructed from the seed / prescription by reset()).
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 private:
  template <class Topo>
  void scatter_range(const Topo& topo, NodeId first, NodeId last,
                     std::span<const Load> loads, FlowSink& sink);

  std::uint64_t seed_;
  int d_plus_ = 0;
  NonNegDiv div_;  // ⌊x/d⁺⌋ via shift when d⁺ is a power of two
  std::vector<int> rotor_;                // per node, in [0, d⁺)
  std::vector<std::int32_t> port_order_;  // n * d⁺ permutation table
  /// True when the port order is the natural one (seed 0, no prescribed
  /// permutation): cyclic position == port, so the scatter kernel
  /// computes extra-token targets from (position, d⁺) through the
  /// topology cursor and extra_targets_ is never built.
  bool natural_order_ = false;
  /// Kernel companion of port_order_ (shuffled/prescribed orders only):
  /// entry [u*2d⁺ + pos] is the node an extra token dealt at cyclic
  /// position `pos` lands on — the neighbour behind the port, or u itself
  /// for self-loop ports. Stored twice per node (positions [0, 2d⁺)) so
  /// the rotor walk never wraps, making the extras loop branch-free.
  std::vector<NodeId> extra_targets_;
  /// port_order_ doubled per node the same way, for the row kernel's
  /// wrap-free extras walk over *ports*.
  std::vector<std::int32_t> port_order2x_;
  std::vector<int> prescribed_rotors_;
  std::vector<std::int32_t> prescribed_order_;
};

}  // namespace dlb
