// SEND([x/d⁺]): round-to-nearest stateless balancer.
//
// A node with load x sends [x/d⁺] (nearest integer, ties up) over every
// original edge; the rest is split over self-loops so that every port
// gets ⌊x/d⁺⌋ or ⌈x/d⁺⌉ and as many self-loops as possible get the
// ceiling. Observation 2.2: cumulatively 0-fair. Observation 3.2: a good
// s-balancer for d⁺ > 2d; our greedy self-loop split achieves
// s = ⌈(d⁺−2d)/2⌉ in the worst step (the round-up case leaves only
// e(u)−d ceiling tokens for self-loops, and e(u) can be as small as
// ⌈d⁺/2⌉), which still satisfies Theorem 3.3 with s = Θ(d⁺−2d). The
// fairness auditor measures the effective s of every run.
#pragma once

#include "core/balancer.hpp"
#include "util/intmath.hpp"

namespace dlb {

class SendRound : public Balancer {
 public:
  std::string name() const override { return "SEND(nearest)"; }
  void reset(const Graph& graph, int d_loops) override;
  void decide(NodeId u, Load load, Step t, std::span<Load> flows) override;

  /// Scatter kernel: every neighbour gets [x/d⁺] and everything else
  /// (self-loop shares + remainder) stays local in one add — the
  /// self-loop ceiling split only redistributes tokens that never leave
  /// the node. Row kernel: replays decide()'s exact port assignment.
  void decide_range(NodeId first, NodeId last, std::span<const Load> loads,
                    Step t, FlowSink& sink) override;

  bool parallel_decide_safe() const override { return true; }  // stateless

  /// Worst-case guaranteed self-preference of this implementation for the
  /// configured d and d°: ⌈(d⁺−2d)/2⌉ when d⁺ > 2d, else 0.
  int guaranteed_s() const noexcept { return guaranteed_s_; }

 private:
  template <class Topo>
  void scatter_range(const Topo& topo, NodeId first, NodeId last,
                     std::span<const Load> loads, FlowSink& sink);

  int d_ = 0;
  int d_loops_ = 0;
  int d_plus_ = 0;
  int guaranteed_s_ = 0;
  NonNegDiv div_;       // ⌊x/d⁺⌋, shift/mask for power-of-two d⁺
  NonNegDiv div_twice_; // ⌊·/2d⁺⌋, for [x/d⁺] = ⌊(2x+d⁺)/2d⁺⌋
};

}  // namespace dlb
