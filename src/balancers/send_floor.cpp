#include "balancers/send_floor.hpp"

#include <algorithm>

#include "util/assertions.hpp"
#include "util/intmath.hpp"

namespace dlb {

void SendFloor::reset(const Graph& graph, int d_loops) {
  DLB_REQUIRE(d_loops >= 0, "SendFloor: negative self-loop count");
  d_plus_ = graph.degree() + d_loops;
  div_ = NonNegDiv(d_plus_);
}

void SendFloor::decide(NodeId /*u*/, Load load, Step /*t*/,
                       std::span<Load> flows) {
  DLB_REQUIRE(load >= 0, "SendFloor cannot handle negative load");
  const Load share = floor_div(load, d_plus_);
  std::fill(flows.begin(), flows.end(), share);
  // Excess e(u) = load − d⁺·share stays as the remainder.
}

void SendFloor::decide_range(NodeId first, NodeId last,
                             std::span<const Load> loads, Step /*t*/,
                             FlowSink& sink) {
  const Graph& g = sink.graph();
  const int d = g.degree();
  if (sink.row_mode()) {
    for (NodeId u = first; u < last; ++u) {
      const Load x = loads[static_cast<std::size_t>(u)];
      DLB_REQUIRE(x >= 0, "SendFloor cannot handle negative load");
      std::span<Load> row = sink.row(u);
      std::fill(row.begin(), row.end(), div_.quot(x));
    }
    return;
  }
  const auto next = sink.scatter();
  for (NodeId u = first; u < last; ++u) {
    const Load x = loads[static_cast<std::size_t>(u)];
    DLB_REQUIRE(x >= 0, "SendFloor cannot handle negative load");
    const Load q = div_.quot(x);
    const NodeId* nb = g.neighbors(u).data();
    for (int p = 0; p < d; ++p) {
      next.add(static_cast<std::size_t>(nb[p]), q);
    }
    // d° self-loop shares plus the excess stay local.
    next.add(static_cast<std::size_t>(u), x - q * d);
  }
}

}  // namespace dlb
