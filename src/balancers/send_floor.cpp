#include "balancers/send_floor.hpp"

#include <algorithm>
#include <array>

#include "graph/topology.hpp"
#include "util/assertions.hpp"
#include "util/intmath.hpp"

namespace dlb {

void SendFloor::reset(const Graph& graph, int d_loops) {
  DLB_REQUIRE(d_loops >= 0, "SendFloor: negative self-loop count");
  d_plus_ = graph.degree() + d_loops;
  div_ = NonNegDiv(d_plus_);
}

void SendFloor::decide(NodeId /*u*/, Load load, Step /*t*/,
                       std::span<Load> flows) {
  DLB_REQUIRE(load >= 0, "SendFloor cannot handle negative load");
  const Load share = floor_div(load, d_plus_);
  std::fill(flows.begin(), flows.end(), share);
  // Excess e(u) = load − d⁺·share stays as the remainder.
}

void SendFloor::decide_range(NodeId first, NodeId last,
                             std::span<const Load> loads, Step /*t*/,
                             FlowSink& sink) {
  if (sink.row_mode()) {
    for (NodeId u = first; u < last; ++u) {
      const Load x = loads[static_cast<std::size_t>(u)];
      DLB_REQUIRE(x >= 0, "SendFloor cannot handle negative load");
      std::span<Load> row = sink.row(u);
      std::fill(row.begin(), row.end(), div_.quot(x));
    }
    return;
  }
  with_topology(sink.graph(), [&](const auto& topo) {
    scatter_range(topo, first, last, loads, sink);
  });
}

void SendFloor::scatter_range(const CycleTopology& topo, NodeId first,
                              NodeId last, std::span<const Load> loads,
                              FlowSink& sink) {
  // Pure streaming stencil: one pass over loads, one write per next-load
  // slot, no adjacency traffic and no read-modify-write accumulation.
  // The left/right floor shares ride a register rotation; only the two
  // range boundaries wrap around the cycle.
  const NodeId n = topo.num_nodes();
  const auto sweep = [&](auto&& emit) {
    const auto at = [&](NodeId u) {
      return loads[static_cast<std::size_t>(u)];
    };
    Load q_left = div_.quot(at(first == 0 ? n - 1 : first - 1));
    Load x = at(first);
    for (NodeId u = first; u < last; ++u) {
      DLB_REQUIRE(x >= 0, "SendFloor cannot handle negative load");
      const Load x_right = at(u + 1 == n ? 0 : u + 1);
      const Load q = div_.quot(x);
      emit(static_cast<std::size_t>(u), x - 2 * q + q_left + div_.quot(x_right));
      q_left = q;
      x = x_right;
    }
  };
  if (sink.assign_first()) {
    const auto next = sink.plain();
    sweep([&](std::size_t u, Load acc) { next.assign(u, acc); });
  } else {
    const auto next = sink.scatter();
    sweep([&](std::size_t u, Load acc) { next.add(u, acc); });
  }
}

void SendFloor::scatter_range(const TorusTopology& topo, NodeId first,
                              NodeId last, std::span<const Load> loads,
                              FlowSink& sink) {
  // Row-blocked gather stencil: within one dimension-0 row, every
  // higher-dimension neighbor sits at a *fixed* signed offset (the wrap
  // decision depends only on that dimension's coordinate, constant over
  // the row), and the dimension-0 neighbors are ±1 with wraps at the two
  // row ends. So the inner loop reads 2r constant-stride streams plus
  // the row itself and writes each next-load slot exactly once — no
  // coordinate arithmetic per node, no read-modify-write accumulation.
  // next(u) = kept(u) + Σ_p ⌊x(neighbor)/d⁺⌋ is what the symmetric
  // scatter delivers, term for term; integer addition commutes, so the
  // trajectory is byte-identical, and the single touch per slot makes
  // the kernel valid under both accumulator protocols.
  const int d = topo.degree();
  const int r = topo.dims();
  const NodeId ext0 = topo.extent(0);
  const bool assign_first = sink.assign_first();
  std::array<NodeId, 2 * (TorusTopology::kMaxDims - 1)> off{};
  NodeId u = first;
  while (u < last) {
    const auto c0 = static_cast<NodeId>(topo.coordinate(u, 0));
    const NodeId row_start = u - c0;
    const NodeId seg_end = std::min<NodeId>(last, row_start + ext0);
    int m = 0;
    for (int k = 1; k < r; ++k) {
      const auto ck = static_cast<NodeId>(topo.coordinate(u, k));
      const NodeId ext = topo.extent(k);
      const NodeId stride = topo.stride(k);
      off[static_cast<std::size_t>(m++)] =
          ck + 1 == ext ? -(ext - 1) * stride : stride;
      off[static_cast<std::size_t>(m++)] =
          ck == 0 ? (ext - 1) * stride : -stride;
    }
    const auto segment = [&](auto&& emit) {
      for (NodeId v = u; v < seg_end; ++v) {
        const NodeId c = v - row_start;
        const NodeId left = c == 0 ? row_start + ext0 - 1 : v - 1;
        const NodeId right = c + 1 == ext0 ? row_start : v + 1;
        const Load x = loads[static_cast<std::size_t>(v)];
        DLB_REQUIRE(x >= 0, "SendFloor cannot handle negative load");
        Load acc = x - div_.quot(x) * d +
                   div_.quot(loads[static_cast<std::size_t>(left)]) +
                   div_.quot(loads[static_cast<std::size_t>(right)]);
        for (int j = 0; j < m; j += 2) {
          acc += div_.quot(loads[static_cast<std::size_t>(
                     v + off[static_cast<std::size_t>(j)])]) +
                 div_.quot(loads[static_cast<std::size_t>(
                     v + off[static_cast<std::size_t>(j + 1)])]);
        }
        emit(static_cast<std::size_t>(v), acc);
      }
    };
    if (assign_first) {
      const auto next = sink.plain();
      segment([&](std::size_t v, Load acc) { next.assign(v, acc); });
    } else {
      const auto next = sink.scatter();
      segment([&](std::size_t v, Load acc) { next.add(v, acc); });
    }
    u = seg_end;
  }
}

template <class Topo>
void SendFloor::scatter_range(const Topo& topo, NodeId first, NodeId last,
                              std::span<const Load> loads, FlowSink& sink) {
  const int d = topo.degree();
  if (sink.assign_first()) {
    // Kept-first assign pass: every slot's first touch of the round is
    // this assign, which is what lets the neighbour shares below be
    // plain adds with no epoch stamp and no zero-fill.
    const auto next = sink.plain();
    for (NodeId u = first; u < last; ++u) {
      const Load x = loads[static_cast<std::size_t>(u)];
      DLB_REQUIRE(x >= 0, "SendFloor cannot handle negative load");
      next.assign(static_cast<std::size_t>(u), x - div_.quot(x) * d);
    }
    auto cur = topo.cursor(first);
    for (NodeId u = first; u < last; ++u, cur.advance()) {
      const Load q = div_.quot(loads[static_cast<std::size_t>(u)]);
      for (int p = 0; p < d; ++p) {
        next.add(static_cast<std::size_t>(cur.neighbor(p)), q);
      }
    }
    return;
  }
  const auto next = sink.scatter();
  auto cur = topo.cursor(first);
  for (NodeId u = first; u < last; ++u, cur.advance()) {
    const Load x = loads[static_cast<std::size_t>(u)];
    DLB_REQUIRE(x >= 0, "SendFloor cannot handle negative load");
    const Load q = div_.quot(x);
    for (int p = 0; p < d; ++p) {
      next.add(static_cast<std::size_t>(cur.neighbor(p)), q);
    }
    // d° self-loop shares plus the excess stay local.
    next.add(static_cast<std::size_t>(u), x - q * d);
  }
}

}  // namespace dlb
