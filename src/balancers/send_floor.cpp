#include "balancers/send_floor.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <limits>

#include "graph/topology.hpp"
#include "util/assertions.hpp"
#include "util/intmath.hpp"
#include "util/simd.hpp"

namespace dlb {

namespace {

// Shared torus row-gather core: sweeps storage-space indices [first, last)
// of `xs`, extracting coordinates at `storage index + shift` (the flat
// path runs with shift = 0 over the whole load vector; the windowed path
// runs with shift = global_begin − reach over a shard's halo'd window).
// `ring_top` forces the top dimension's offsets to ±stride(r−1): in ring
// coordinates the wrap offset ±(ext−1)·stride is congruent to ∓stride
// mod n, and a window filled mod n makes that congruence literal — the
// flat path keeps the true wrap offsets. Everything else — the row
// blocking, the per-segment scalar/AVX2 bodies, the emit order, the
// min/max fold — is byte-for-byte the same arithmetic in both callers.
template <class Emit, class EmitBlock>
void torus_gather_rows(const TorusTopology& topo, const NonNegDiv& div,
                       NodeId first, NodeId last, NodeId shift, bool ring_top,
                       const Load* xs, Load& lo, Load& hi, Emit&& emit,
                       [[maybe_unused]] EmitBlock&& emit_block) {
  const int d = topo.degree();
  const int r = topo.dims();
  const NodeId ext0 = topo.extent(0);
  std::array<NodeId, 2 * (TorusTopology::kMaxDims - 1)> off{};
  int m = 0;
  NodeId row_start = 0;
  NodeId u = first;

  // Scalar sweep over [a, b) within the current row.
  const auto segment = [&](NodeId a, NodeId b, auto&& emit_one) {
    for (NodeId v = a; v < b; ++v) {
      const NodeId c = v - row_start;
      const NodeId left = c == 0 ? row_start + ext0 - 1 : v - 1;
      const NodeId right = c + 1 == ext0 ? row_start : v + 1;
      const Load x = xs[static_cast<std::size_t>(v)];
      DLB_REQUIRE(x >= 0, "SendFloor cannot handle negative load");
      Load acc = x - div.quot(x) * d +
                 div.quot(xs[static_cast<std::size_t>(left)]) +
                 div.quot(xs[static_cast<std::size_t>(right)]);
      for (int j = 0; j < m; j += 2) {
        acc += div.quot(xs[static_cast<std::size_t>(
                   v + off[static_cast<std::size_t>(j)])]) +
               div.quot(xs[static_cast<std::size_t>(
                   v + off[static_cast<std::size_t>(j + 1)])]);
      }
      emit_one(static_cast<std::size_t>(v), acc);
      lo = acc < lo ? acc : lo;
      hi = acc > hi ? acc : hi;
    }
  };

  while (u < last) {
    const auto c0 = static_cast<NodeId>(topo.coordinate(u + shift, 0));
    row_start = u - c0;
    const NodeId seg_end = std::min<NodeId>(last, row_start + ext0);
    m = 0;
    for (int k = 1; k < r; ++k) {
      const NodeId ext = topo.extent(k);
      const NodeId stride = topo.stride(k);
      if (ring_top && k == r - 1) {
        // Ring window: the top dimension's neighbours are always at
        // ±stride — the wrap case collapsed into the halo fill.
        off[static_cast<std::size_t>(m++)] = stride;
        off[static_cast<std::size_t>(m++)] = -stride;
        continue;
      }
      const auto ck = static_cast<NodeId>(topo.coordinate(u + shift, k));
      off[static_cast<std::size_t>(m++)] =
          ck + 1 == ext ? -(ext - 1) * stride : stride;
      off[static_cast<std::size_t>(m++)] =
          ck == 0 ? (ext - 1) * stride : -stride;
    }

#ifdef DLB_SIMD_AVX2
    if (div.pow2() && simd::enabled() && seg_end - u >= 2 * simd::kLanes) {
      const __m128i sh = _mm_cvtsi32_si128(div.pow2_shift());
      // Row-interior nodes: dimension-0 neighbors are ±1, no wrap.
      const NodeId a = std::max<NodeId>(u, row_start + 1);
      const NodeId b = std::min<NodeId>(seg_end, row_start + ext0 - 1);
      segment(u, a, emit);
      __m256i vmin = _mm256_set1_epi64x(std::numeric_limits<Load>::max());
      __m256i vmax = _mm256_set1_epi64x(std::numeric_limits<Load>::min());
      NodeId v = a;
      for (; v + simd::kLanes <= b; v += simd::kLanes) {
        const __m256i vx =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + v));
        if (simd::any_negative(vx)) {
          segment(v, v + simd::kLanes, emit);
          continue;
        }
        const __m256i q = _mm256_srl_epi64(vx, sh);
        // q·d as an add chain: exact int64, no 64-bit vector multiply
        // needed (d is small — 2r).
        __m256i qd = q;
        for (int i = 1; i < d; ++i) qd = _mm256_add_epi64(qd, q);
        __m256i acc = _mm256_sub_epi64(vx, qd);
        acc = _mm256_add_epi64(
            acc, _mm256_srl_epi64(
                     _mm256_loadu_si256(
                         reinterpret_cast<const __m256i*>(xs + v - 1)),
                     sh));
        acc = _mm256_add_epi64(
            acc, _mm256_srl_epi64(
                     _mm256_loadu_si256(
                         reinterpret_cast<const __m256i*>(xs + v + 1)),
                     sh));
        for (int j = 0; j < m; ++j) {
          const Load* stream = xs + v + off[static_cast<std::size_t>(j)];
          acc = _mm256_add_epi64(
              acc,
              _mm256_srl_epi64(_mm256_loadu_si256(
                                   reinterpret_cast<const __m256i*>(stream)),
                               sh));
        }
        emit_block(static_cast<std::size_t>(v), acc);
        vmin = simd::min_epi64(vmin, acc);
        vmax = simd::max_epi64(vmax, acc);
      }
      const Load vlo = simd::reduce_min(vmin);
      const Load vhi = simd::reduce_max(vmax);
      lo = vlo < lo ? vlo : lo;
      hi = vhi > hi ? vhi : hi;
      segment(v, seg_end, emit);
      u = seg_end;
      continue;
    }
#endif
    segment(u, seg_end, emit);
    u = seg_end;
  }
}

}  // namespace

void SendFloor::reset(const Graph& graph, int d_loops) {
  DLB_REQUIRE(d_loops >= 0, "SendFloor: negative self-loop count");
  d_plus_ = graph.degree() + d_loops;
  div_ = NonNegDiv(d_plus_);
}

void SendFloor::decide(NodeId /*u*/, Load load, Step /*t*/,
                       std::span<Load> flows) {
  DLB_REQUIRE(load >= 0, "SendFloor cannot handle negative load");
  const Load share = floor_div(load, d_plus_);
  std::fill(flows.begin(), flows.end(), share);
  // Excess e(u) = load − d⁺·share stays as the remainder.
}

void SendFloor::decide_range(NodeId first, NodeId last,
                             std::span<const Load> loads, Step /*t*/,
                             FlowSink& sink) {
  if (sink.row_mode()) {
    for (NodeId u = first; u < last; ++u) {
      const Load x = loads[static_cast<std::size_t>(u)];
      DLB_REQUIRE(x >= 0, "SendFloor cannot handle negative load");
      std::span<Load> row = sink.row(u);
      std::fill(row.begin(), row.end(), div_.quot(x));
    }
    return;
  }
  with_topology(sink.graph(), [&](const auto& topo) {
    scatter_range(topo, first, last, loads, sink);
  });
}

void SendFloor::scatter_range(const CycleTopology& topo, NodeId first,
                              NodeId last, std::span<const Load> loads,
                              FlowSink& sink) {
  // Pure streaming stencil: one pass over loads, one write per next-load
  // slot, no adjacency traffic and no read-modify-write accumulation.
  // Single-touch, so the round's min/max ride the emit sweep
  // (FlowSink::merge_emit_stats) and the engine's dedicated stats pass
  // disappears. The AVX2 path processes four interior nodes per vector —
  // three unaligned load streams (left/self/right), lane shifts for the
  // floor shares (power-of-two d⁺ only), one store plus a 4-byte epoch
  // stamp — and is byte-identical to the scalar rotation: same integer
  // arithmetic, and a block store equals four single-touch add()s (see
  // Scatter::raw_values). The two range boundaries and any tail stay
  // scalar.
  const NodeId n = topo.num_nodes();
  const Load* xs = loads.data();
  Load lo = std::numeric_limits<Load>::max();
  Load hi = std::numeric_limits<Load>::min();

  // Scalar sweep over [a, b): left/right floor shares ride a register
  // rotation; only the two cycle boundaries wrap.
  const auto sweep = [&](NodeId a, NodeId b, auto&& emit) {
    if (a >= b) return;
    const auto at = [&](NodeId u) { return xs[static_cast<std::size_t>(u)]; };
    Load q_left = div_.quot(at(a == 0 ? n - 1 : a - 1));
    Load x = at(a);
    for (NodeId u = a; u < b; ++u) {
      DLB_REQUIRE(x >= 0, "SendFloor cannot handle negative load");
      const Load x_right = at(u + 1 == n ? 0 : u + 1);
      const Load q = div_.quot(x);
      const Load acc = x - 2 * q + q_left + div_.quot(x_right);
      emit(static_cast<std::size_t>(u), acc);
      lo = acc < lo ? acc : lo;
      hi = acc > hi ? acc : hi;
      q_left = q;
      x = x_right;
    }
  };

  const auto run = [&](auto&& emit, [[maybe_unused]] auto&& emit_block) {
#ifdef DLB_SIMD_AVX2
    if (div_.pow2() && simd::enabled() &&
        last - first >= 2 * simd::kLanes) {
      const __m128i sh = _mm_cvtsi32_si128(div_.pow2_shift());
      // Interior nodes: both neighbors are ±1, no wrap.
      const NodeId a = std::max<NodeId>(first, 1);
      const NodeId b = std::min<NodeId>(last, n - 1);
      sweep(first, a, emit);
      __m256i vmin = _mm256_set1_epi64x(std::numeric_limits<Load>::max());
      __m256i vmax = _mm256_set1_epi64x(std::numeric_limits<Load>::min());
      NodeId u = a;
      for (; u + simd::kLanes <= b; u += simd::kLanes) {
        const __m256i vx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(xs + u));
        if (simd::any_negative(vx)) {
          // Negative load in the block: the scalar sweep reproduces the
          // exact per-node contract check (and throws at the right node).
          sweep(u, u + simd::kLanes, emit);
          continue;
        }
        const __m256i vl = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(xs + u - 1));
        const __m256i vr = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(xs + u + 1));
        const __m256i q = _mm256_srl_epi64(vx, sh);
        __m256i acc = _mm256_sub_epi64(vx, _mm256_add_epi64(q, q));
        acc = _mm256_add_epi64(acc, _mm256_srl_epi64(vl, sh));
        acc = _mm256_add_epi64(acc, _mm256_srl_epi64(vr, sh));
        emit_block(static_cast<std::size_t>(u), acc);
        vmin = simd::min_epi64(vmin, acc);
        vmax = simd::max_epi64(vmax, acc);
      }
      const Load vlo = simd::reduce_min(vmin);
      const Load vhi = simd::reduce_max(vmax);
      lo = vlo < lo ? vlo : lo;
      hi = vhi > hi ? vhi : hi;
      sweep(u, last, emit);
      return;
    }
#endif
    sweep(first, last, emit);
  };

  if (sink.assign_first()) {
    const auto next = sink.plain();
    [[maybe_unused]] Load* vals = next.raw_values();
    run([&](std::size_t u, Load acc) { next.assign(u, acc); },
#ifdef DLB_SIMD_AVX2
        [&](std::size_t u, __m256i acc) {
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + u), acc);
        }
#else
        0
#endif
    );
  } else {
    const auto next = sink.scatter();
    [[maybe_unused]] Load* vals = next.raw_values();
    [[maybe_unused]] std::uint8_t* ep = next.raw_epoch();
    [[maybe_unused]] const std::uint32_t st4 =
        std::uint32_t{0x01010101} * next.epoch_stamp();
    run([&](std::size_t u, Load acc) { next.add(u, acc); },
#ifdef DLB_SIMD_AVX2
        [&](std::size_t u, __m256i acc) {
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + u), acc);
          std::memcpy(ep + u, &st4, sizeof(st4));
        }
#else
        0
#endif
    );
  }
  sink.merge_emit_stats(lo, hi, last - first);
}

void SendFloor::scatter_range(const TorusTopology& topo, NodeId first,
                              NodeId last, std::span<const Load> loads,
                              FlowSink& sink) {
  // Row-blocked gather stencil: within one dimension-0 row, every
  // higher-dimension neighbor sits at a *fixed* signed offset (the wrap
  // decision depends only on that dimension's coordinate, constant over
  // the row), and the dimension-0 neighbors are ±1 with wraps at the two
  // row ends. So the inner loop reads 2r constant-stride streams plus
  // the row itself and writes each next-load slot exactly once — no
  // coordinate arithmetic per node, no read-modify-write accumulation.
  // next(u) = kept(u) + Σ_p ⌊x(neighbor)/d⁺⌋ is what the symmetric
  // scatter delivers, term for term; integer addition commutes, so the
  // trajectory is byte-identical, and the single touch per slot makes
  // the kernel valid under both accumulator protocols — and lets the
  // round's min/max ride the emit sweep (merge_emit_stats). The AVX2
  // path gathers the same 2r + 3 streams four row-interior nodes at a
  // time (lane shifts need power-of-two d⁺; q·d is a short add chain so
  // the integer arithmetic stays exact); row ends and tails stay scalar.
  torus_gather_dispatch(topo, first, last, /*shift=*/0, /*ring_top=*/false,
                        loads.data(), last - first, sink);
}

// Emit-mode selection around torus_gather_rows, shared by the flat
// scatter kernel (storage space == global space) and the windowed shard
// kernel (storage space == window slots).
void SendFloor::torus_gather_dispatch(const TorusTopology& topo, NodeId first,
                                      NodeId last, NodeId shift, bool ring_top,
                                      const Load* xs, NodeId covered,
                                      FlowSink& sink) {
  Load lo = std::numeric_limits<Load>::max();
  Load hi = std::numeric_limits<Load>::min();
  if (sink.assign_first()) {
    const auto next = sink.plain();
    [[maybe_unused]] Load* vals = next.raw_values();
    torus_gather_rows(
        topo, div_, first, last, shift, ring_top, xs, lo, hi,
        [&](std::size_t v, Load acc) { next.assign(v, acc); },
#ifdef DLB_SIMD_AVX2
        [&](std::size_t v, __m256i acc) {
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + v), acc);
        }
#else
        0
#endif
    );
  } else {
    const auto next = sink.scatter();
    [[maybe_unused]] Load* vals = next.raw_values();
    [[maybe_unused]] std::uint8_t* ep = next.raw_epoch();
    [[maybe_unused]] const std::uint32_t st4 =
        std::uint32_t{0x01010101} * next.epoch_stamp();
    torus_gather_rows(
        topo, div_, first, last, shift, ring_top, xs, lo, hi,
        [&](std::size_t v, Load acc) { next.add(v, acc); },
#ifdef DLB_SIMD_AVX2
        [&](std::size_t v, __m256i acc) {
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(vals + v), acc);
          std::memcpy(ep + v, &st4, sizeof(st4));
        }
#else
        0
#endif
    );
  }
  sink.merge_emit_stats(lo, hi, covered);
}

NodeId SendFloor::window_reach(const Graph& g) const {
  switch (g.structure().kind) {
    case GraphStructure::kCycle:
      return 1;
    case GraphStructure::kTorus: {
      // Top dimension's stride: every lower dimension's wrap offset
      // (ext_k − 1)·stride_k < stride_{k+1} stays inside it, and the top
      // dimension's own wrap ±(ext−1)·stride ≡ ∓stride mod n. A 1-dim
      // torus is the cycle (reach 1 = stride(0)).
      const TorusTopology topo(g);
      return topo.stride(topo.dims() - 1);
    }
    default:
      return -1;  // hypercube/generic: no bounded ring reach
  }
}

void SendFloor::decide_window(std::span<const Load> window, NodeId global_begin,
                              NodeId owned, NodeId reach, Step /*t*/,
                              FlowSink& sink) {
  const Graph& g = sink.graph();
  const auto kind = g.structure().kind;
  DLB_REQUIRE(window.size() ==
                  static_cast<std::size_t>(owned) + 2 * static_cast<std::size_t>(reach),
              "SendFloor::decide_window: window size mismatch");
  if (kind == GraphStructure::kCycle ||
      (kind == GraphStructure::kTorus && g.structure().extents.size() == 1)) {
    // The window is a halo'd cycle segment: running the flat cycle
    // stencil over a synthetic cycle the size of the window, restricted
    // to the owned interior [reach, reach + owned), performs exactly the
    // windowed gather — the boundary wraps are never taken, every read
    // lands on a halo or owned slot. Same div_, same SIMD body, same
    // emit order → byte-identical next loads.
    scatter_range(CycleTopology(static_cast<NodeId>(window.size())), reach,
                  reach + owned, window, sink);
    return;
  }
  DLB_REQUIRE(kind == GraphStructure::kTorus,
              "SendFloor::decide_window: unsupported structure");
  const TorusTopology topo(g);
  torus_gather_dispatch(topo, reach, reach + owned,
                        /*shift=*/global_begin - reach, /*ring_top=*/true,
                        window.data(), owned, sink);
}

template <class Topo>
void SendFloor::scatter_range(const Topo& topo, NodeId first, NodeId last,
                              std::span<const Load> loads, FlowSink& sink) {
  const int d = topo.degree();
  if (sink.assign_first()) {
    // Kept-first assign pass: every slot's first touch of the round is
    // this assign, which is what lets the neighbour shares below be
    // plain adds with no epoch stamp and no zero-fill.
    const auto next = sink.plain();
    for (NodeId u = first; u < last; ++u) {
      const Load x = loads[static_cast<std::size_t>(u)];
      DLB_REQUIRE(x >= 0, "SendFloor cannot handle negative load");
      next.assign(static_cast<std::size_t>(u), x - div_.quot(x) * d);
    }
    auto cur = topo.cursor(first);
    for (NodeId u = first; u < last; ++u, cur.advance()) {
      const Load q = div_.quot(loads[static_cast<std::size_t>(u)]);
      for (int p = 0; p < d; ++p) {
        next.add(static_cast<std::size_t>(cur.neighbor(p)), q);
      }
    }
    return;
  }
  const auto next = sink.scatter();
  auto cur = topo.cursor(first);
  for (NodeId u = first; u < last; ++u, cur.advance()) {
    const Load x = loads[static_cast<std::size_t>(u)];
    DLB_REQUIRE(x >= 0, "SendFloor cannot handle negative load");
    const Load q = div_.quot(x);
    for (int p = 0; p < d; ++p) {
      next.add(static_cast<std::size_t>(cur.neighbor(p)), q);
    }
    // d° self-loop shares plus the excess stay local.
    next.add(static_cast<std::size_t>(u), x - q * d);
  }
}

}  // namespace dlb
