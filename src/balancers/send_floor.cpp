#include "balancers/send_floor.hpp"

#include <algorithm>

#include "util/assertions.hpp"
#include "util/intmath.hpp"

namespace dlb {

void SendFloor::reset(const Graph& graph, int d_loops) {
  DLB_REQUIRE(d_loops >= 0, "SendFloor: negative self-loop count");
  d_plus_ = graph.degree() + d_loops;
}

void SendFloor::decide(NodeId /*u*/, Load load, Step /*t*/,
                       std::span<Load> flows) {
  DLB_REQUIRE(load >= 0, "SendFloor cannot handle negative load");
  const Load share = floor_div(load, d_plus_);
  std::fill(flows.begin(), flows.end(), share);
  // Excess e(u) = load − d⁺·share stays as the remainder.
}

}  // namespace dlb
