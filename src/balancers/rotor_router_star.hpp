// ROTOR-ROUTER*: the paper's good 1-balancer rotor variant (Section 1.1).
//
// Configuration: d° = d self-loops (so d⁺ = 2d). One *special* self-loop
// always receives ⌈x/(2d)⌉ = ⌈x/d⁺⌉ tokens; the remaining load is dealt
// by an ordinary rotor over the other 2d−1 ports (d original edges and
// d−1 self-loops). Arithmetic (x = q·2d + r):
//   r = 0:   special gets q, the 2d−1 rotor ports get exactly q each;
//   r >= 1:  special gets q+1, remaining q(2d−1) + (r−1) splits as q per
//            port plus r−1 rotor extras.
// Every port therefore gets ⌊x/d⁺⌋ or ⌈x/d⁺⌉ (round-fair), original-edge
// cumulative flows differ by <= 1 (cumulatively 1-fair), and whenever
// e(u) > 0 the special self-loop gets the ceiling — a good 1-balancer
// (Observation 3.2), so Theorem 3.3 gives O(d) discrepancy.
#pragma once

#include <cstdint>
#include <vector>

#include "core/balancer.hpp"
#include "util/intmath.hpp"

namespace dlb {

class RotorRouterStar : public Balancer {
 public:
  explicit RotorRouterStar(std::uint64_t seed = 0) : seed_(seed) {}

  std::string name() const override { return "ROTOR-ROUTER*"; }

  /// Requires d_loops == graph.degree() (the paper fixes d° = d).
  void reset(const Graph& graph, int d_loops) override;
  void decide(NodeId u, Load load, Step t, std::span<Load> flows) override;

  /// Scatter kernel: the special self-loop's ⌈x/d⁺⌉ and the ordinary
  /// self-loop shares stay local implicitly; only real-edge tokens are
  /// scattered — no flow row is materialized. Row kernel: fill q, stamp
  /// the special port's ceiling, walk the rotor extras wrap-free.
  void decide_range(NodeId first, NodeId last, std::span<const Load> loads,
                    Step t, FlowSink& sink) override;

  bool parallel_decide_safe() const override { return true; }  // per-node rotors

  /// Snapshot state: the rotor positions over the 2d−1 ordinary ports.
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 private:
  template <class Topo>
  void scatter_range(const Topo& topo, NodeId first, NodeId last,
                     std::span<const Load> loads, FlowSink& sink);

  std::uint64_t seed_;
  int d_ = 0;
  int rotor_ports_ = 0;  // 2d − 1
  NonNegDiv div_;        // ⌊x/2d⌋ via shift when 2d is a power of two
  std::vector<int> rotor_;
  // No extra-target table: rotor positions are ports directly, so the
  // scatter kernel computes each extra token's destination from
  // (position, d) through the topology cursor — see scatter_range.
};

}  // namespace dlb
