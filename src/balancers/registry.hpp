// Registry: construct any Table-1 algorithm by enum, with its self-loop
// requirements, so benches and examples can sweep "all algorithms"
// uniformly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/balancer.hpp"

namespace dlb {

/// The discrete algorithms of Table 1 implemented in this library.
enum class Algorithm {
  kSendFloor,        ///< SEND(⌊x/d⁺⌋) — stateless, cumulatively 0-fair
  kSendRound,        ///< SEND([x/d⁺]) — stateless, good s-balancer for d⁺>2d
  kRotorRouter,      ///< ROTOR-ROUTER — cumulatively 1-fair
  kRotorRouterStar,  ///< ROTOR-ROUTER* — good 1-balancer
  kFixedPriority,    ///< round-fair but not cumulatively fair ([17] class)
  kRandomizedExtra,  ///< randomized excess distribution [5]
  kRandomizedRounding,  ///< randomized edge rounding [18], may go negative
  kContinuousMimic,  ///< continuous-flow mimicking [4]: Θ(d), stateful, NL
  kBoundedError,  ///< quasirandom diffusion [9]: bounded rounding error, NL
};

/// All algorithms, in Table-1 order.
std::vector<Algorithm> all_algorithms();

/// Stable display name (matches the Balancer::name() of the instance).
std::string algorithm_name(Algorithm a);

/// Instantiates the balancer. `seed` feeds randomized algorithms and
/// rotor initialization; deterministic algorithms ignore it.
std::unique_ptr<Balancer> make_balancer(Algorithm a, std::uint64_t seed = 0);

/// Smallest d° the algorithm supports on a d-regular graph; the paper's
/// theorems additionally want d° >= d for the improved bounds.
int min_self_loops(Algorithm a, int degree);

/// True if the algorithm requires exactly d° == d (ROTOR-ROUTER*).
bool requires_exact_d_loops(Algorithm a);

/// Constructs a fresh balancer instance for a given seed. Sweep workers
/// call the factory once per scenario so every run owns its balancer
/// state — nothing mutable is shared across threads.
using BalancerFactory =
    std::function<std::unique_ptr<Balancer>(std::uint64_t seed)>;

/// Factory for a Table-1 algorithm (wraps make_balancer).
BalancerFactory balancer_factory(Algorithm a);

/// Self-loop requirements of a named balancer, as data: `min_loops` maps
/// the graph degree to the smallest supported d°; `exact_d_loops` pins
/// d° == d (ROTOR-ROUTER*).
struct BalancerTraits {
  std::function<int(int degree)> min_loops = [](int) { return 0; };
  bool exact_d_loops = false;
};

/// Registers a balancer under a stable name so sweeps and CLIs can refer
/// to it without extending the Algorithm enum. Registering an existing
/// name replaces the entry. Thread-safe; register before sweeping.
void register_balancer(const std::string& name, BalancerFactory factory,
                       BalancerTraits traits = {});

/// True if `name` resolves (Table-1 names are pre-registered).
bool balancer_registered(const std::string& name);

/// All registered names, Table-1 algorithms first, then custom ones in
/// registration order.
std::vector<std::string> registered_balancer_names();

/// Looks up a registered factory; throws invariant_error if unknown.
BalancerFactory find_balancer_factory(const std::string& name);

/// Looks up the registered traits; throws invariant_error if unknown.
BalancerTraits find_balancer_traits(const std::string& name);

}  // namespace dlb
