// Registry: construct any Table-1 algorithm by enum, with its self-loop
// requirements, so benches and examples can sweep "all algorithms"
// uniformly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/balancer.hpp"

namespace dlb {

/// The discrete algorithms of Table 1 implemented in this library.
enum class Algorithm {
  kSendFloor,        ///< SEND(⌊x/d⁺⌋) — stateless, cumulatively 0-fair
  kSendRound,        ///< SEND([x/d⁺]) — stateless, good s-balancer for d⁺>2d
  kRotorRouter,      ///< ROTOR-ROUTER — cumulatively 1-fair
  kRotorRouterStar,  ///< ROTOR-ROUTER* — good 1-balancer
  kFixedPriority,    ///< round-fair but not cumulatively fair ([17] class)
  kRandomizedExtra,  ///< randomized excess distribution [5]
  kRandomizedRounding,  ///< randomized edge rounding [18], may go negative
  kContinuousMimic,  ///< continuous-flow mimicking [4]: Θ(d), stateful, NL
  kBoundedError,  ///< quasirandom diffusion [9]: bounded rounding error, NL
};

/// All algorithms, in Table-1 order.
std::vector<Algorithm> all_algorithms();

/// Stable display name (matches the Balancer::name() of the instance).
std::string algorithm_name(Algorithm a);

/// Instantiates the balancer. `seed` feeds randomized algorithms and
/// rotor initialization; deterministic algorithms ignore it.
std::unique_ptr<Balancer> make_balancer(Algorithm a, std::uint64_t seed = 0);

/// Smallest d° the algorithm supports on a d-regular graph; the paper's
/// theorems additionally want d° >= d for the improved bounds.
int min_self_loops(Algorithm a, int degree);

/// True if the algorithm requires exactly d° == d (ROTOR-ROUTER*).
bool requires_exact_d_loops(Algorithm a);

}  // namespace dlb
