// RAND-EXTRA: randomized distribution of excess tokens (Table 1 row 2).
//
// After the deterministic base share of ⌊x/d⁺⌋ per port, each of the
// e(u) = x mod d⁺ excess tokens is sent to an independently uniform port
// (original edge or self-loop). This is the diffusive scheme of
// Berenbrink–Cooper–Friedetzky–Friedrich–Sauerwald (SODA 2011): stateless
// and never negative, but randomized and only round-fair in expectation —
// a port can receive several extras in one step. Serves as the randomized
// baseline the paper's deterministic schemes are compared against.
#pragma once

#include <cstdint>

#include "core/balancer.hpp"
#include "util/rng.hpp"

namespace dlb {

class RandomizedExtra : public Balancer {
 public:
  explicit RandomizedExtra(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  std::string name() const override { return "RAND-EXTRA"; }
  void reset(const Graph& graph, int d_loops) override;
  void decide(NodeId u, Load load, Step t, std::span<Load> flows) override;

  /// Snapshot state: the sequential RNG words — a restored run continues
  /// the exact random stream the captured one would have drawn.
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 private:
  std::uint64_t seed_;
  Rng rng_;
  int d_plus_ = 0;
};

}  // namespace dlb
