#include "balancers/fixed_priority.hpp"

#include "util/assertions.hpp"
#include "util/intmath.hpp"

namespace dlb {

void FixedPriority::reset(const Graph& graph, int d_loops) {
  DLB_REQUIRE(d_loops >= 0, "FixedPriority: negative self-loop count");
  d_plus_ = graph.degree() + d_loops;
}

void FixedPriority::decide(NodeId /*u*/, Load load, Step /*t*/,
                           std::span<Load> flows) {
  DLB_REQUIRE(load >= 0, "FixedPriority cannot handle negative load");
  const Load q = floor_div(load, d_plus_);
  const Load r = load - q * d_plus_;
  for (int p = 0; p < d_plus_; ++p) {
    flows[static_cast<std::size_t>(p)] = q + (p < r ? 1 : 0);
  }
}

}  // namespace dlb
