#include "balancers/fixed_priority.hpp"

#include <algorithm>

#include "graph/topology.hpp"
#include "util/assertions.hpp"
#include "util/intmath.hpp"

namespace dlb {

void FixedPriority::reset(const Graph& graph, int d_loops) {
  DLB_REQUIRE(d_loops >= 0, "FixedPriority: negative self-loop count");
  d_plus_ = graph.degree() + d_loops;
  div_ = NonNegDiv(d_plus_);
}

void FixedPriority::decide(NodeId /*u*/, Load load, Step /*t*/,
                           std::span<Load> flows) {
  DLB_REQUIRE(load >= 0, "FixedPriority cannot handle negative load");
  const Load q = floor_div(load, d_plus_);
  const Load r = load - q * d_plus_;
  for (int p = 0; p < d_plus_; ++p) {
    flows[static_cast<std::size_t>(p)] = q + (p < r ? 1 : 0);
  }
}

void FixedPriority::decide_range(NodeId first, NodeId last,
                                 std::span<const Load> loads, Step /*t*/,
                                 FlowSink& sink) {
  if (sink.row_mode()) {
    for (NodeId u = first; u < last; ++u) {
      const Load x = loads[static_cast<std::size_t>(u)];
      DLB_REQUIRE(x >= 0, "FixedPriority cannot handle negative load");
      const Load q = div_.quot(x);
      const Load r = x - q * d_plus_;
      std::span<Load> row = sink.row(u);
      std::fill(row.begin(), row.end(), q);
      for (Load p = 0; p < r; ++p) ++row[static_cast<std::size_t>(p)];
    }
    return;
  }
  with_topology(sink.graph(), [&](const auto& topo) {
    scatter_range(topo, first, last, loads, sink);
  });
}

template <class Topo>
void FixedPriority::scatter_range(const Topo& topo, NodeId first, NodeId last,
                                  std::span<const Load> loads,
                                  FlowSink& sink) {
  const int d = topo.degree();
  const auto next = sink.scatter();
  auto cur = topo.cursor(first);
  for (NodeId u = first; u < last; ++u, cur.advance()) {
    const Load x = loads[static_cast<std::size_t>(u)];
    DLB_REQUIRE(x >= 0, "FixedPriority cannot handle negative load");
    const Load q = div_.quot(x);
    const Load r = x - q * d_plus_;
    // The first e(u) ports in priority order get one extra; only the
    // first min(e(u), d) of those are original edges.
    const Load edge_extras = std::min<Load>(r, d);
    for (int p = 0; p < d; ++p) {
      next.add(static_cast<std::size_t>(cur.neighbor(p)),
               q + (p < edge_extras ? 1 : 0));
    }
    // Self-loop shares (with their extras) and the remainder stay local.
    next.add(static_cast<std::size_t>(u), x - q * d - edge_extras);
  }
}

}  // namespace dlb
