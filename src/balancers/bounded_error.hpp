// BOUNDED-ERROR: quasirandom diffusion (Friedrich–Gairing–Sauerwald,
// SODA 2010) — deterministic per-edge rounding with bounded cumulative
// rounding error.
//
// Each directed edge keeps a fractional carry c(e) ∈ (−1/2, 1/2]. In
// every step the edge's continuous share is x_t(u)/d⁺; the scheme sends
// the nearest integer to share+carry and stores the residual:
//   desired = x/d⁺ + c(e);  f = round(desired);  c(e) = desired − f.
// By induction |Σ_τ (f_τ(e) − x_τ(u)/d⁺)| = |c(e)| <= 1/2 — the
// "bounded-error property" of [9], under which they prove O(log^{3/2} n)
// discrepancy on hypercubes and O(1) on constant-dimension tori.
//
// Faithful caveat (the paper's Section 1.2 criticism): the rounded demand
// can exceed a node's available load, producing negative loads; the
// engine tolerates this via allows_negative() and the benches report it.
#pragma once

#include <vector>

#include "core/balancer.hpp"

namespace dlb {

class BoundedError : public Balancer {
 public:
  std::string name() const override { return "BOUNDED-ERROR"; }
  void reset(const Graph& graph, int d_loops) override;
  void decide(NodeId u, Load load, Step t, std::span<Load> flows) override;

  /// Scatter kernel: rounds each directed edge's share+carry and scatters
  /// it directly; the carry update is bitwise-identical to decide()'s.
  /// Row kernel: the same rounding written into the per-node record.
  void decide_range(NodeId first, NodeId last, std::span<const Load> loads,
                    Step t, FlowSink& sink) override;

  bool parallel_decide_safe() const override { return true; }  // per-edge carries

  bool allows_negative() const override { return true; }

  /// Largest |carry| currently stored (tests assert <= 1/2).
  double max_abs_carry() const;

  /// Snapshot state: the per-edge fractional carries (bit-exact — the
  /// carry is the scheme's entire memory).
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 private:
  template <class Topo>
  void scatter_range(const Topo& topo, NodeId first, NodeId last,
                     std::span<const Load> loads, FlowSink& sink);

  int d_ = 0;
  int d_plus_ = 0;
  std::vector<double> carry_;  // n * d, one per directed original edge
};

}  // namespace dlb
