// CONT-MIMIC: the continuous-flow-mimicking algorithm of Akbari,
// Berenbrink & Sauerwald (PODC 2012) — Table 1's "computation based on
// continuous diffusion" row.
//
// The algorithm simulates the continuous diffusion process internally.
// For every directed edge e it tracks the cumulative continuous flow
// W_t(e) = Σ_{τ≤t} y_τ(u)/d⁺ (y = continuous loads) and each step sends
//   f_t(e) = round(W_t(e)) − F_{t−1}(e),
// keeping the discrete cumulative flow F within 1/2 of the continuous
// one. This achieves Θ(d) discrepancy after T — the best deterministic
// guarantee in the diffusive model — but pays for it (cf. Table 1's
// columns): it is stateful, it must know the continuous process (extra
// computation; in a real deployment, extra communication), and it can
// drive loads negative when a node's initial load is small. Our
// implementation is the contrast row for the paper's "simple schemes get
// almost the same guarantee" message.
#pragma once

#include <vector>

#include "core/balancer.hpp"

namespace dlb {

class ContinuousMimic : public Balancer {
 public:
  std::string name() const override { return "CONT-MIMIC"; }
  void reset(const Graph& graph, int d_loops) override;

  /// Requires an initial-load snapshot before the first step; the engine
  /// calls decide() node by node, so the balancer lazily captures the
  /// loads of step 0 from the first decide() round (t == 0 pre-loads are
  /// the engine's initial vector, which it sees one node at a time).
  void decide(NodeId u, Load load, Step t, std::span<Load> flows) override;

  /// Advances the internal continuous process once per round (and
  /// captures the step-0 snapshot) — the shared state that keeps
  /// decide_range below free of cross-node writes.
  void prepare_round(std::span<const Load> loads, Step t,
                     FlowSink& sink) override;

  /// Kernel: the rounded cumulative-flow deltas, scattered edge by edge
  /// (scatter mode) or written into the per-node records (row mode) —
  /// same state evolution as n decide() calls, without a flow matrix.
  void decide_range(NodeId first, NodeId last, std::span<const Load> loads,
                    Step t, FlowSink& sink) override;

  bool allows_negative() const override { return true; }

  /// Per-edge cumulative-flow state only (the continuous trajectory is
  /// advanced serially in prepare_round), so ranges may run concurrently.
  bool parallel_decide_safe() const override { return true; }

  /// prepare_round captures the step-0 load snapshot from its span — the
  /// sharded engine must gather the global loads before calling it.
  bool prepare_reads_loads() const override { return true; }

  /// Snapshot state: the full internal continuous process — step cursor,
  /// initialization progress, continuous loads y, and both cumulative
  /// flow vectors (bit-exact doubles; a restored run replays the same
  /// roundings).
  void save_state(StateWriter& w) const override;
  void load_state(StateReader& r) override;

 private:
  template <class Topo>
  void scatter_range(const Topo& topo, NodeId first, NodeId last,
                     std::span<const Load> loads, FlowSink& sink);

  void advance_continuous();

  const Graph* g_ = nullptr;
  int d_ = 0;
  int d_loops_ = 0;
  int d_plus_ = 0;
  Step current_step_ = -1;
  bool initialized_ = false;
  NodeId seen_ = 0;  // nodes captured during step 0
  std::vector<double> y_;           // continuous loads at current step
  std::vector<double> w_cum_;       // cumulative continuous flow per edge
  std::vector<Load> f_cum_;         // cumulative discrete flow per edge
};

}  // namespace dlb
