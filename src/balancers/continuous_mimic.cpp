#include "balancers/continuous_mimic.hpp"

#include <cmath>

#include "graph/topology.hpp"
#include "util/assertions.hpp"
#include "util/simd.hpp"

namespace dlb {

#ifdef DLB_SIMD_AVX2
namespace {

// d == 2 arithmetic core. Same shape as BoundedError's: deinterleave the
// [u*2 + p] per-edge state into one vector per port, run the
// accumulate/round/delta chain on 4 nodes at once, reinterleave and store.
// All operations are exact IEEE identities, so w_cum, f_cum and the flows
// are byte-identical to the scalar loop. The guard checks the *updated*
// cumulative flow |w'| < kExactMax (NLT_UQ also catches NaN) before any
// state is written, so an out-of-range block falls back to the scalar
// body cleanly. Only the per-round delta is vectorized — the continuous
// trajectory itself (advance_continuous) stays serial scalar code, since
// its multiply-accumulate chain must not be re-associated or contracted.
template <class Topo>
void scatter_d2_avx2(const Topo& topo, NodeId first, NodeId last,
                     std::span<const Load> loads, FlowSink& sink,
                     const double* y, double* w_cum, Load* f_cum,
                     int d_plus) {
  const auto next = sink.scatter();
  auto cur = topo.cursor(first);
  const Load* xs = loads.data();
  const __m256d vdp = _mm256_set1_pd(static_cast<double>(d_plus));
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d lim = _mm256_set1_pd(static_cast<double>(simd::kExactMax));

  const auto scalar_node = [&](NodeId u) {
    const Load x = xs[static_cast<std::size_t>(u)];
    const double per_edge = y[static_cast<std::size_t>(u)] / d_plus;
    Load sent = 0;
    for (int p = 0; p < 2; ++p) {
      const std::size_t e = static_cast<std::size_t>(u) * 2 +
                            static_cast<std::size_t>(p);
      w_cum[e] += per_edge;
      const Load target = static_cast<Load>(std::llround(w_cum[e]));
      const Load f = target - f_cum[e];
      f_cum[e] = target;
      next.add(static_cast<std::size_t>(cur.neighbor(p)), f);
      sent += f;
    }
    next.add(static_cast<std::size_t>(u), x - sent);
    cur.advance();
  };

  NodeId u = first;
  alignas(32) Load f0s[simd::kLanes];
  alignas(32) Load f1s[simd::kLanes];
  alignas(32) Load keep[simd::kLanes];
  for (; u + simd::kLanes <= last; u += simd::kLanes) {
    const __m256d per = _mm256_div_pd(_mm256_loadu_pd(y + u), vdp);
    double* wp = w_cum + static_cast<std::size_t>(u) * 2;
    __m256d w0;
    __m256d w1;
    simd::deinterleave2_pd(_mm256_loadu_pd(wp), _mm256_loadu_pd(wp + 4), w0,
                           w1);
    w0 = _mm256_add_pd(w0, per);
    w1 = _mm256_add_pd(w1, per);
    const __m256d bad0 =
        _mm256_cmp_pd(_mm256_and_pd(w0, abs_mask), lim, _CMP_NLT_UQ);
    const __m256d bad1 =
        _mm256_cmp_pd(_mm256_and_pd(w1, abs_mask), lim, _CMP_NLT_UQ);
    if (_mm256_movemask_pd(_mm256_or_pd(bad0, bad1)) != 0) {
      for (int i = 0; i < simd::kLanes; ++i) scalar_node(u + i);
      continue;
    }
    const __m256d t0 = simd::round_half_away(w0);
    const __m256d t1 = simd::round_half_away(w1);
    __m256d a;
    __m256d b;
    simd::interleave2_pd(w0, w1, a, b);
    _mm256_storeu_pd(wp, a);
    _mm256_storeu_pd(wp + 4, b);
    const __m256i ft0 = simd::to_int64(t0);
    const __m256i ft1 = simd::to_int64(t1);
    Load* fp = f_cum + static_cast<std::size_t>(u) * 2;
    __m256i fc0;
    __m256i fc1;
    simd::deinterleave2_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fp)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fp + 4)), fc0,
        fc1);
    const __m256i f0 = _mm256_sub_epi64(ft0, fc0);
    const __m256i f1 = _mm256_sub_epi64(ft1, fc1);
    __m256i ia;
    __m256i ib;
    simd::interleave2_epi64(ft0, ft1, ia, ib);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(fp), ia);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(fp + 4), ib);
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + u));
    _mm256_store_si256(reinterpret_cast<__m256i*>(f0s), f0);
    _mm256_store_si256(reinterpret_cast<__m256i*>(f1s), f1);
    _mm256_store_si256(reinterpret_cast<__m256i*>(keep),
                       _mm256_sub_epi64(vx, _mm256_add_epi64(f0, f1)));
    for (int i = 0; i < simd::kLanes; ++i) {
      next.add(static_cast<std::size_t>(cur.neighbor(0)), f0s[i]);
      next.add(static_cast<std::size_t>(cur.neighbor(1)), f1s[i]);
      next.add(static_cast<std::size_t>(u + i), keep[i]);
      cur.advance();
    }
  }
  for (; u < last; ++u) scalar_node(u);
}

}  // namespace
#endif  // DLB_SIMD_AVX2

void ContinuousMimic::reset(const Graph& graph, int d_loops) {
  DLB_REQUIRE(d_loops >= 0, "ContinuousMimic: negative self-loop count");
  g_ = &graph;
  d_ = graph.degree();
  d_loops_ = d_loops;
  d_plus_ = d_ + d_loops;
  current_step_ = -1;
  initialized_ = false;
  seen_ = 0;
  y_.assign(static_cast<std::size_t>(graph.num_nodes()), 0.0);
  w_cum_.assign(static_cast<std::size_t>(graph.num_nodes()) * d_, 0.0);
  f_cum_.assign(static_cast<std::size_t>(graph.num_nodes()) * d_, 0);
}

void ContinuousMimic::advance_continuous() {
  // y <- P·y on the balancing graph (d° self-loops). The gather loop
  // rides the same implicit-topology dispatch as the discrete kernels:
  // structured graphs compute their neighbours here too.
  std::vector<double> next(y_.size());
  const double inv = 1.0 / d_plus_;
  with_topology(*g_, [&](const auto& topo) {
    const int d = topo.degree();
    auto cur = topo.cursor(0);
    for (NodeId v = 0; v < g_->num_nodes(); ++v, cur.advance()) {
      double acc = static_cast<double>(d_loops_) * inv *
                   y_[static_cast<std::size_t>(v)];
      for (int p = 0; p < d; ++p) {
        acc += inv * y_[static_cast<std::size_t>(cur.neighbor(p))];
      }
      next[static_cast<std::size_t>(v)] = acc;
    }
  });
  y_.swap(next);
}

void ContinuousMimic::decide(NodeId u, Load load, Step t,
                             std::span<Load> flows) {
  if (t > current_step_) {
    // First decide() of a new step: advance the internal continuous
    // simulation (no-op before the very first step, when y is captured
    // from the engine's initial loads below).
    if (initialized_) advance_continuous();
    current_step_ = t;
  }
  if (!initialized_) {
    // Step 0: discrete and continuous loads coincide; capture them (one
    // decide() call per node, in any order).
    y_[static_cast<std::size_t>(u)] = static_cast<double>(load);
    if (++seen_ == g_->num_nodes()) initialized_ = true;
  }

  // Continuous flow this step over every original edge of u is y(u)/d⁺;
  // send the difference between the rounded cumulative continuous flow
  // and what has been sent so far, keeping |F_t(e) − W_t(e)| <= 1/2.
  const double per_edge = y_[static_cast<std::size_t>(u)] / d_plus_;
  for (int p = 0; p < d_; ++p) {
    const std::size_t e = static_cast<std::size_t>(u) * d_ +
                          static_cast<std::size_t>(p);
    w_cum_[e] += per_edge;
    const Load target = static_cast<Load>(std::llround(w_cum_[e]));
    flows[static_cast<std::size_t>(p)] = target - f_cum_[e];
    f_cum_[e] = target;
  }
  // Self-loop ports carry nothing explicitly; the rest of the load stays
  // as the node's remainder (which may be negative — cf. Table 1's NL).
  for (int p = d_; p < d_plus_; ++p) flows[static_cast<std::size_t>(p)] = 0;
}

void ContinuousMimic::prepare_round(std::span<const Load> loads, Step t,
                                    FlowSink& /*sink*/) {
  if (t > current_step_) {
    if (initialized_) advance_continuous();
    current_step_ = t;
  }
  if (!initialized_) {
    for (NodeId u = 0; u < g_->num_nodes(); ++u) {
      y_[static_cast<std::size_t>(u)] =
          static_cast<double>(loads[static_cast<std::size_t>(u)]);
    }
    seen_ = g_->num_nodes();
    initialized_ = true;
  }
}

void ContinuousMimic::decide_range(NodeId first, NodeId last,
                                   std::span<const Load> loads, Step /*t*/,
                                   FlowSink& sink) {
  if (sink.row_mode()) {
    const int d_plus = sink.ports();
    for (NodeId u = first; u < last; ++u) {
      const double per_edge = y_[static_cast<std::size_t>(u)] / d_plus_;
      std::span<Load> row = sink.row(u);
      for (int p = 0; p < d_; ++p) {
        const std::size_t e = static_cast<std::size_t>(u) * d_ +
                              static_cast<std::size_t>(p);
        w_cum_[e] += per_edge;
        const Load target = static_cast<Load>(std::llround(w_cum_[e]));
        row[static_cast<std::size_t>(p)] = target - f_cum_[e];
        f_cum_[e] = target;
      }
      for (int p = d_; p < d_plus; ++p) row[static_cast<std::size_t>(p)] = 0;
    }
    return;
  }
  with_topology(sink.graph(), [&](const auto& topo) {
    scatter_range(topo, first, last, loads, sink);
  });
}

template <class Topo>
void ContinuousMimic::scatter_range(const Topo& topo, NodeId first,
                                    NodeId last, std::span<const Load> loads,
                                    FlowSink& sink) {
  const int d = topo.degree();
#ifdef DLB_SIMD_AVX2
  if (d == 2 && d_ == 2 && simd::enabled() &&
      last - first >= 2 * simd::kLanes) {
    scatter_d2_avx2(topo, first, last, loads, sink, y_.data(), w_cum_.data(),
                    f_cum_.data(), d_plus_);
    return;
  }
#endif
  const auto next = sink.scatter();
  auto cur = topo.cursor(first);
  for (NodeId u = first; u < last; ++u, cur.advance()) {
    const Load x = loads[static_cast<std::size_t>(u)];
    const double per_edge = y_[static_cast<std::size_t>(u)] / d_plus_;
    Load sent = 0;
    for (int p = 0; p < d; ++p) {
      const std::size_t e = static_cast<std::size_t>(u) * d_ +
                            static_cast<std::size_t>(p);
      w_cum_[e] += per_edge;
      const Load target = static_cast<Load>(std::llround(w_cum_[e]));
      const Load f = target - f_cum_[e];
      f_cum_[e] = target;
      next.add(static_cast<std::size_t>(cur.neighbor(p)), f);
      sent += f;
    }
    // Self-loops carry nothing; the (possibly negative) rest stays local.
    next.add(static_cast<std::size_t>(u), x - sent);
  }
}


void ContinuousMimic::save_state(StateWriter& w) const {
  w.i64(current_step_);
  w.b(initialized_);
  w.i32(seen_);
  w.vec_f64(y_);
  w.vec_f64(w_cum_);
  w.vec_i64(f_cum_);
}

void ContinuousMimic::load_state(StateReader& r) {
  const Step current_step = r.i64();
  const bool initialized = r.b();
  const NodeId seen = r.i32();
  std::vector<double> y = r.vec_f64();
  std::vector<double> w_cum = r.vec_f64();
  std::vector<Load> f_cum = r.vec_i64();
  DLB_REQUIRE(y.size() == y_.size() && w_cum.size() == w_cum_.size() &&
                  f_cum.size() == f_cum_.size(),
              "ContinuousMimic: state size mismatch");
  DLB_REQUIRE(seen >= 0 && seen <= static_cast<NodeId>(y.size()),
              "ContinuousMimic: bad initialization progress");
  current_step_ = current_step;
  initialized_ = initialized;
  seen_ = seen;
  y_ = std::move(y);
  w_cum_ = std::move(w_cum);
  f_cum_ = std::move(f_cum);
}

}  // namespace dlb
