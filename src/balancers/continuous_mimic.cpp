#include "balancers/continuous_mimic.hpp"

#include <cmath>

#include "graph/topology.hpp"
#include "util/assertions.hpp"

namespace dlb {

void ContinuousMimic::reset(const Graph& graph, int d_loops) {
  DLB_REQUIRE(d_loops >= 0, "ContinuousMimic: negative self-loop count");
  g_ = &graph;
  d_ = graph.degree();
  d_loops_ = d_loops;
  d_plus_ = d_ + d_loops;
  current_step_ = -1;
  initialized_ = false;
  seen_ = 0;
  y_.assign(static_cast<std::size_t>(graph.num_nodes()), 0.0);
  w_cum_.assign(static_cast<std::size_t>(graph.num_nodes()) * d_, 0.0);
  f_cum_.assign(static_cast<std::size_t>(graph.num_nodes()) * d_, 0);
}

void ContinuousMimic::advance_continuous() {
  // y <- P·y on the balancing graph (d° self-loops). The gather loop
  // rides the same implicit-topology dispatch as the discrete kernels:
  // structured graphs compute their neighbours here too.
  std::vector<double> next(y_.size());
  const double inv = 1.0 / d_plus_;
  with_topology(*g_, [&](const auto& topo) {
    const int d = topo.degree();
    auto cur = topo.cursor(0);
    for (NodeId v = 0; v < g_->num_nodes(); ++v, cur.advance()) {
      double acc = static_cast<double>(d_loops_) * inv *
                   y_[static_cast<std::size_t>(v)];
      for (int p = 0; p < d; ++p) {
        acc += inv * y_[static_cast<std::size_t>(cur.neighbor(p))];
      }
      next[static_cast<std::size_t>(v)] = acc;
    }
  });
  y_.swap(next);
}

void ContinuousMimic::decide(NodeId u, Load load, Step t,
                             std::span<Load> flows) {
  if (t > current_step_) {
    // First decide() of a new step: advance the internal continuous
    // simulation (no-op before the very first step, when y is captured
    // from the engine's initial loads below).
    if (initialized_) advance_continuous();
    current_step_ = t;
  }
  if (!initialized_) {
    // Step 0: discrete and continuous loads coincide; capture them (one
    // decide() call per node, in any order).
    y_[static_cast<std::size_t>(u)] = static_cast<double>(load);
    if (++seen_ == g_->num_nodes()) initialized_ = true;
  }

  // Continuous flow this step over every original edge of u is y(u)/d⁺;
  // send the difference between the rounded cumulative continuous flow
  // and what has been sent so far, keeping |F_t(e) − W_t(e)| <= 1/2.
  const double per_edge = y_[static_cast<std::size_t>(u)] / d_plus_;
  for (int p = 0; p < d_; ++p) {
    const std::size_t e = static_cast<std::size_t>(u) * d_ +
                          static_cast<std::size_t>(p);
    w_cum_[e] += per_edge;
    const Load target = static_cast<Load>(std::llround(w_cum_[e]));
    flows[static_cast<std::size_t>(p)] = target - f_cum_[e];
    f_cum_[e] = target;
  }
  // Self-loop ports carry nothing explicitly; the rest of the load stays
  // as the node's remainder (which may be negative — cf. Table 1's NL).
  for (int p = d_; p < d_plus_; ++p) flows[static_cast<std::size_t>(p)] = 0;
}

void ContinuousMimic::prepare_round(std::span<const Load> loads, Step t,
                                    FlowSink& /*sink*/) {
  if (t > current_step_) {
    if (initialized_) advance_continuous();
    current_step_ = t;
  }
  if (!initialized_) {
    for (NodeId u = 0; u < g_->num_nodes(); ++u) {
      y_[static_cast<std::size_t>(u)] =
          static_cast<double>(loads[static_cast<std::size_t>(u)]);
    }
    seen_ = g_->num_nodes();
    initialized_ = true;
  }
}

void ContinuousMimic::decide_range(NodeId first, NodeId last,
                                   std::span<const Load> loads, Step /*t*/,
                                   FlowSink& sink) {
  if (sink.row_mode()) {
    const int d_plus = sink.ports();
    for (NodeId u = first; u < last; ++u) {
      const double per_edge = y_[static_cast<std::size_t>(u)] / d_plus_;
      std::span<Load> row = sink.row(u);
      for (int p = 0; p < d_; ++p) {
        const std::size_t e = static_cast<std::size_t>(u) * d_ +
                              static_cast<std::size_t>(p);
        w_cum_[e] += per_edge;
        const Load target = static_cast<Load>(std::llround(w_cum_[e]));
        row[static_cast<std::size_t>(p)] = target - f_cum_[e];
        f_cum_[e] = target;
      }
      for (int p = d_; p < d_plus; ++p) row[static_cast<std::size_t>(p)] = 0;
    }
    return;
  }
  with_topology(sink.graph(), [&](const auto& topo) {
    scatter_range(topo, first, last, loads, sink);
  });
}

template <class Topo>
void ContinuousMimic::scatter_range(const Topo& topo, NodeId first,
                                    NodeId last, std::span<const Load> loads,
                                    FlowSink& sink) {
  const int d = topo.degree();
  const auto next = sink.scatter();
  auto cur = topo.cursor(first);
  for (NodeId u = first; u < last; ++u, cur.advance()) {
    const Load x = loads[static_cast<std::size_t>(u)];
    const double per_edge = y_[static_cast<std::size_t>(u)] / d_plus_;
    Load sent = 0;
    for (int p = 0; p < d; ++p) {
      const std::size_t e = static_cast<std::size_t>(u) * d_ +
                            static_cast<std::size_t>(p);
      w_cum_[e] += per_edge;
      const Load target = static_cast<Load>(std::llround(w_cum_[e]));
      const Load f = target - f_cum_[e];
      f_cum_[e] = target;
      next.add(static_cast<std::size_t>(cur.neighbor(p)), f);
      sent += f;
    }
    // Self-loops carry nothing; the (possibly negative) rest stays local.
    next.add(static_cast<std::size_t>(u), x - sent);
  }
}


void ContinuousMimic::save_state(StateWriter& w) const {
  w.i64(current_step_);
  w.b(initialized_);
  w.i32(seen_);
  w.vec_f64(y_);
  w.vec_f64(w_cum_);
  w.vec_i64(f_cum_);
}

void ContinuousMimic::load_state(StateReader& r) {
  const Step current_step = r.i64();
  const bool initialized = r.b();
  const NodeId seen = r.i32();
  std::vector<double> y = r.vec_f64();
  std::vector<double> w_cum = r.vec_f64();
  std::vector<Load> f_cum = r.vec_i64();
  DLB_REQUIRE(y.size() == y_.size() && w_cum.size() == w_cum_.size() &&
                  f_cum.size() == f_cum_.size(),
              "ContinuousMimic: state size mismatch");
  DLB_REQUIRE(seen >= 0 && seen <= static_cast<NodeId>(y.size()),
              "ContinuousMimic: bad initialization progress");
  current_step_ = current_step;
  initialized_ = initialized;
  seen_ = seen;
  y_ = std::move(y);
  w_cum_ = std::move(w_cum);
  f_cum_ = std::move(f_cum);
}

}  // namespace dlb
