#include "balancers/randomized_rounding.hpp"

#include "util/assertions.hpp"
#include "util/intmath.hpp"

namespace dlb {

void RandomizedRounding::reset(const Graph& graph, int d_loops) {
  DLB_REQUIRE(d_loops >= 0, "RandomizedRounding: negative self-loop count");
  d_ = graph.degree();
  d_plus_ = d_ + d_loops;
  rng_ = Rng(seed_);
}

void RandomizedRounding::decide(NodeId /*u*/, Load load, Step /*t*/,
                                std::span<Load> flows) {
  // Works for negative loads too: floor_div floors toward −∞ so the
  // fractional part stays in [0, 1).
  const Load q = floor_div(load, d_plus_);
  const double frac =
      static_cast<double>(load - q * d_plus_) / static_cast<double>(d_plus_);
  for (int p = 0; p < d_; ++p) {
    flows[static_cast<std::size_t>(p)] = q + (rng_.bernoulli(frac) ? 1 : 0);
  }
  for (int p = d_; p < d_plus_; ++p) {
    flows[static_cast<std::size_t>(p)] = q;
  }
}


void RandomizedRounding::save_state(StateWriter& w) const {
  for (std::uint64_t word : rng_.state()) w.u64(word);
}

void RandomizedRounding::load_state(StateReader& r) {
  std::array<std::uint64_t, 4> words;
  for (auto& word : words) word = r.u64();
  rng_.set_state(words);
}

}  // namespace dlb
