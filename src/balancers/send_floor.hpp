// SEND(⌊x/d⁺⌋): the simplest stateless cumulatively 0-fair balancer.
//
// Section 1.1: a node with load x sends ⌊x/d⁺⌋ tokens over every original
// edge; each self-loop also receives ⌊x/d⁺⌋ and the excess
// e(u) = x − d⁺·⌊x/d⁺⌋ < d⁺ stays as the remainder. Observation 2.2: this
// is cumulatively 0-fair, so Theorem 2.3 applies; it is *not* a good
// s-balancer (no self-loop is preferred), which is exactly the gap the
// paper's Table 1 marks as "open" for its O(d) convergence.
#pragma once

#include "core/balancer.hpp"
#include "util/intmath.hpp"

namespace dlb {

class CycleTopology;
class TorusTopology;

class SendFloor : public Balancer {
 public:
  std::string name() const override { return "SEND(floor)"; }
  void reset(const Graph& graph, int d_loops) override;
  void decide(NodeId u, Load load, Step t, std::span<Load> flows) override;

  /// Scatter kernel: every neighbour gets ⌊x/d⁺⌋, the node keeps the rest
  /// (self-loop shares + excess) — no flow row ever exists. Row kernel:
  /// every port slot is ⌊x/d⁺⌋, one fill per node. The scatter kernel is
  /// templated on the topology: on tagged cycle/torus/hypercube graphs
  /// neighbours are computed, not loaded.
  void decide_range(NodeId first, NodeId last, std::span<const Load> loads,
                    Step t, FlowSink& sink) override;

  bool parallel_decide_safe() const override { return true; }  // stateless

  /// Supports the kept-first-assign + plain-adds scatter protocol (the
  /// epoch-RMW alternative): pass 1 assigns every node's kept load,
  /// pass 2 adds the neighbour shares.
  bool assign_first_scatter_safe() const override { return true; }

  /// Windowed-gather support for the sharded engine: the cycle stencil
  /// reaches one slot each way; the r-dim torus row gather reaches
  /// stride(r−1) ring slots (the top dimension's wrap offset
  /// ±(ext−1)·stride ≡ ∓stride mod n, so in ring coordinates *every*
  /// neighbour lies within stride(r−1)). Hypercube/generic have no
  /// bounded ring reach (−1 → the engine's tier-2 flow routing).
  NodeId window_reach(const Graph& g) const override;

  /// Per-slice variants of the structured scatter kernels above, running
  /// the same scalar/SIMD bodies over a halo'd window (indices are window
  /// slots, all stencil reads in-bounds by the window_reach contract).
  void decide_window(std::span<const Load> window, NodeId global_begin,
                     NodeId owned, NodeId reach, Step t,
                     FlowSink& sink) override;

 private:
  template <class Topo>
  void scatter_range(const Topo& topo, NodeId first, NodeId last,
                     std::span<const Load> loads, FlowSink& sink);
  /// Cycle stencil: next(u) = kept(u) + ⌊x(u−1)/d⁺⌋ + ⌊x(u+1)/d⁺⌋ in one
  /// streaming sweep with a single accumulator touch per slot (integer
  /// addition commutes, so the trajectory is byte-identical to the
  /// generic scatter order; each slot's one touch makes the kernel valid
  /// for both the epoch and the assign-first protocol).
  void scatter_range(const CycleTopology& topo, NodeId first, NodeId last,
                     std::span<const Load> loads, FlowSink& sink);
  /// Torus row-blocked gather stencil: per dimension-0 row, all neighbor
  /// offsets are constants, so the sweep is pure constant-stride
  /// streaming with one write per slot. (The hypercube stays on the
  /// cursor-scatter template: its d gather reads span the whole vector
  /// and the dependent-load chain costs more than the scatter writes;
  /// the generic fallback keeps the scatter form too — an arbitrary
  /// graph's gather reads are as random as its scatter writes, plus it
  /// would still stream the port tables.)
  void scatter_range(const TorusTopology& topo, NodeId first, NodeId last,
                     std::span<const Load> loads, FlowSink& sink);
  /// Emit-mode selection around the shared torus row-gather core; the
  /// flat kernel calls it with shift 0 / true wrap offsets, the windowed
  /// kernel with window-slot indices and ring-normalized top-dimension
  /// offsets (see send_floor.cpp).
  void torus_gather_dispatch(const TorusTopology& topo, NodeId first,
                             NodeId last, NodeId shift, bool ring_top,
                             const Load* xs, NodeId covered, FlowSink& sink);

  int d_plus_ = 0;
  NonNegDiv div_;  // ⌊x/d⁺⌋ via shift when d⁺ is a power of two
};

}  // namespace dlb
