// SEND(⌊x/d⁺⌋): the simplest stateless cumulatively 0-fair balancer.
//
// Section 1.1: a node with load x sends ⌊x/d⁺⌋ tokens over every original
// edge; each self-loop also receives ⌊x/d⁺⌋ and the excess
// e(u) = x − d⁺·⌊x/d⁺⌋ < d⁺ stays as the remainder. Observation 2.2: this
// is cumulatively 0-fair, so Theorem 2.3 applies; it is *not* a good
// s-balancer (no self-loop is preferred), which is exactly the gap the
// paper's Table 1 marks as "open" for its O(d) convergence.
#pragma once

#include "core/balancer.hpp"
#include "util/intmath.hpp"

namespace dlb {

class SendFloor : public Balancer {
 public:
  std::string name() const override { return "SEND(floor)"; }
  void reset(const Graph& graph, int d_loops) override;
  void decide(NodeId u, Load load, Step t, std::span<Load> flows) override;

  /// Scatter kernel: every neighbour gets ⌊x/d⁺⌋, the node keeps the rest
  /// (self-loop shares + excess) — no flow row ever exists. Row kernel:
  /// every port slot is ⌊x/d⁺⌋, one fill per node.
  void decide_range(NodeId first, NodeId last, std::span<const Load> loads,
                    Step t, FlowSink& sink) override;

  bool parallel_decide_safe() const override { return true; }  // stateless

 private:
  int d_plus_ = 0;
  NonNegDiv div_;  // ⌊x/d⁺⌋ via shift when d⁺ is a power of two
};

}  // namespace dlb
