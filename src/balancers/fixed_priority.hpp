// FIXED-PRIORITY: a round-fair balancer that is *not* cumulatively fair.
//
// Every port receives ⌊x/d⁺⌋ and the excess e(u) goes, one token each, to
// the first e(u) ports in a fixed priority order (original edges first,
// no rotation). This sits squarely in the Rabani–Sinclair–Wanka class
// ([17]: each edge's flow is the continuous amount rounded up or down)
// but violates Definition 2.1(ii): the cumulative imbalance between the
// first and last original edge grows linearly in time. It is the natural
// "arbitrary rounding" strawman that Theorems 2.3/4.1 improve upon — the
// benches show it plateaus near the Ω(d·diam) lower bound on tori and
// cycles instead of reaching the cumulatively-fair O(d√(log n/µ)).
#pragma once

#include "core/balancer.hpp"
#include "util/intmath.hpp"

namespace dlb {

class FixedPriority : public Balancer {
 public:
  std::string name() const override { return "FIXED-PRIORITY"; }
  void reset(const Graph& graph, int d_loops) override;
  void decide(NodeId u, Load load, Step t, std::span<Load> flows) override;

  /// Scatter kernel: q per neighbour plus one extra on the first
  /// min(e(u), d) edges; self-loop extras and the remainder stay local.
  /// Row kernel: fill q, bump the first e(u) ports.
  void decide_range(NodeId first, NodeId last, std::span<const Load> loads,
                    Step t, FlowSink& sink) override;

  bool parallel_decide_safe() const override { return true; }  // stateless

 private:
  template <class Topo>
  void scatter_range(const Topo& topo, NodeId first, NodeId last,
                     std::span<const Load> loads, FlowSink& sink);

  int d_plus_ = 0;
  NonNegDiv div_;  // ⌊x/d⁺⌋ via shift when d⁺ is a power of two
};

}  // namespace dlb
